// Energy planner: runs the full methodology for a chosen model and QoS slack
// and emits the deployment plan — the per-layer schedule table plus a
// Listing-1-style C snippet showing how the first DAE layer would be driven
// on the real firmware.
//
//   $ ./build/examples/energy_planner            # VWW at +30%
//   $ ./build/examples/energy_planner mbv2 0.5   # MobileNetV2 at +50%
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "graph/zoo.hpp"

int main(int argc, char** argv) {
  using namespace daedvfs;

  std::string which = argc > 1 ? argv[1] : "vww";
  const double slack = argc > 2 ? std::atof(argv[2]) : 0.30;

  graph::Model model = [&] {
    if (which == "pd") return graph::zoo::make_person_detection();
    if (which == "mbv2") return graph::zoo::make_mbv2();
    which = "vww";
    return graph::zoo::make_vww();
  }();

  core::PipelineConfig cfg;
  cfg.qos_slack = slack;
  cfg.space =
      dse::make_paper_design_space(power::PowerModel{cfg.explore.sim.power});
  const core::PipelineResult r = core::Pipeline(cfg).run(model);

  core::print_summary(std::cout, r);
  std::cout << "\n";
  core::print_layer_map(std::cout, r);

  // Emit the firmware-facing snippet for the first DAE-enabled layer.
  for (const auto& ch : r.choices) {
    const auto& s = ch.solution;
    if (s.granularity <= 0) continue;
    const auto& pll = *s.hfo.pll;
    std::cout << "\n// --- firmware schedule for layer " << ch.layer_idx
              << " (" << graph::to_string(r.dse[static_cast<std::size_t>(
                                                    ch.layer_idx)]
                                              .kind)
              << ", Listing 1 of the paper) ---\n";
    std::cout << "for (ch = 0; ch < in_channels; ch += " << s.granularity
              << ") {\n";
    std::cout << "  ClockSwitchHSE(50);                    // LFO for the "
                 "memory-bound segment\n";
    std::cout << "  getChannels(ch, /*g=*/" << s.granularity << ", buf);\n";
    std::cout << "  ClockSwitchPLL(/*M=*/" << pll.pllm << ", /*N=*/"
              << pll.plln << ", /*P=*/" << pll.pllp << ");  // HFO -> "
              << s.hfo.sysclk_mhz() << " MHz\n";
    std::cout << "  convolve(buf, kernel, out);            // compute-bound "
                 "segment\n";
    std::cout << "}\n";
    break;
  }
  return 0;
}
