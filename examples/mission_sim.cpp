// Mission simulator: two weeks of a battery-powered VWW sentry node under
// the adaptive schedule governor, against every static schedule of its
// ladder. The node idles at a relaxed latency bound most of the day; twice a
// day the backend tightens the bound and raises the frame rate ("tracking"),
// and below 20% charge the node trades latency for lifetime.
//
//   $ ./build/mission_sim            # VWW
//   $ ./build/mission_sim pd 0.2     # Person Detection, low-battery SoC 0.2
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "governor/governor.hpp"
#include "graph/zoo.hpp"
#include "scenario/engine.hpp"

int main(int argc, char** argv) {
  using namespace daedvfs;

  std::string which = argc > 1 ? argv[1] : "vww";
  const double low_soc = argc > 2 ? std::atof(argv[2]) : 0.20;
  graph::Model model = [&] {
    if (which == "pd") return graph::zoo::make_person_detection();
    if (which == "mbv2") return graph::zoo::make_mbv2();
    which = "vww";
    return graph::zoo::make_vww();
  }();

  std::cout << "=== " << model.name() << " mission simulation ===\n";
  governor::GovernorConfig gcfg;
  gcfg.pipeline.space = dse::make_paper_design_space(
      power::PowerModel{gcfg.pipeline.explore.sim.power});
  const governor::ScheduleGovernor gov(model, gcfg);
  if (gov.rungs().empty()) {
    std::cerr << "no feasible schedule at any ladder slack for "
              << model.name() << "\n";
    return 1;
  }
  std::cout << "schedule ladder (" << gov.rungs().size()
            << " rungs, t_base " << std::fixed << std::setprecision(0)
            << gov.t_base_us() << " us):\n";
  for (const scenario::RungInfo& r : gov.rungs()) {
    std::cout << "  " << std::left << std::setw(9) << r.name << std::right
              << std::setprecision(0) << std::setw(8) << r.t_us << " us"
              << std::setprecision(1) << std::setw(9) << r.e_uj << " uJ"
              << "   " << std::setprecision(0)
              << r.entry_hfo.sysclk_mhz() << " MHz entry\n";
  }

  scenario::MissionSpec spec;
  spec.name = "sentry-2w";
  spec.horizon_s = 14.0 * 86400.0;
  spec.battery.capacity_mwh = 2400.0;
  spec.duty.period_s = 10.0;
  spec.duty.sleep_mw = 0.8;
  spec.base_qos_slack = gov.rungs().back().qos_slack + 0.10;
  const double tight = gov.rungs().front().qos_slack + 0.01;
  for (int day = 0; day < 14; ++day) {
    const double base_s = day * 86400.0;
    spec.qos_events.push_back({base_s + 20000.0, tight});
    spec.qos_events.push_back({base_s + 24000.0, spec.base_qos_slack});
    spec.qos_events.push_back({base_s + 60000.0, tight});
    spec.qos_events.push_back({base_s + 66000.0, spec.base_qos_slack});
    spec.bursts.push_back({base_s + 20000.0, 4000.0, 1.0});
    spec.bursts.push_back({base_s + 60000.0, 6000.0, 1.0});
  }
  spec.low_battery_soc = low_soc;
  spec.low_battery_qos_slack = spec.base_qos_slack;

  const sim::SimParams& sim = gcfg.pipeline.explore.sim;
  std::cout << "\nmission: " << spec.horizon_s / 86400.0
            << " days, 1 frame/" << spec.duty.period_s
            << " s, 2 tracking phases/day (QoS +"
            << std::setprecision(0) << tight * 100.0 << "%, 1 frame/s)\n\n";

  std::cout << "policy              frames   misses  switches  energy(J)  "
               "battery life\n";
  auto print_row = [&](const scenario::MissionReport& r) {
    std::cout << std::left << std::setw(19) << r.policy << std::right
              << std::setw(7) << r.frames << std::setw(9)
              << r.deadline_misses << std::setw(10) << r.rung_switches
              << std::setprecision(1) << std::setw(11) << r.total_uj() / 1e6
              << std::setw(10) << r.lifetime_days(spec.battery)
              << " days\n";
  };
  print_row(simulate_mission(spec, gov, gov.t_base_us(), sim));
  for (const scenario::RungInfo& rung : gov.rungs()) {
    const scenario::StaticPolicy fixed(rung);
    print_row(simulate_mission(spec, fixed, gov.t_base_us(), sim));
  }

  std::cout << "\nReading: the governor matches the tightest static "
               "schedule's deadline record\nwhile spending close to the "
               "cheapest schedule's energy — static rungs either\nmiss "
               "tracking deadlines or waste energy on the relaxed phase.\n";
  return 0;
}
