// Mission simulator: two weeks of a battery-powered VWW sentry node under
// the adaptive schedule governor, against every static schedule of its
// ladder. The node idles at a relaxed latency bound most of the day; twice a
// day the backend tightens the bound and raises the frame rate ("tracking"),
// and below 20% charge the node trades latency for lifetime. Five stacked
// walkthroughs: v1 duty cycle, v2 field conditions (heat soaks, uplink
// blackouts, predictive pre-lock), v3 energy model (solar harvest + radio
// costs), v4 faults (lossy uplink, brownout resets, checkpointed recovery),
// v6 forecast-aware planning (horizon replay over the mission calendar,
// duty-cycled uplink batches) — plus the optional --fleet v5 walkthrough.
//
//   $ ./build/mission_sim            # VWW
//   $ ./build/mission_sim pd 0.2     # Person Detection, low-battery SoC 0.2
//   $ ./build/mission_sim --days 2 --trace out.json --metrics metrics.json
//   $ ./build/mission_sim pd --days 2 --fleet 500   # v5 fleet walkthrough
//
// --fleet N adds a fifth walkthrough: the v4 checkpointed mission expanded
// into an N-node fleet (seeded per-node battery aging, panel spread, link
// quality, microclimate — scenario/fleet.hpp), fanned out across the thread
// pool on the SoA batch engine, reported as percentile distributions, a
// survival curve and fleet availability.
//
// --trace records the v4 checkpointed-predictive mission as Chrome
// trace-event JSON (open in Perfetto / chrome://tracing; schema in
// docs/observability.md). Only sim-time-stamped events are recorded, so the
// file is byte-identical across runs and kernel backends. --metrics dumps
// the run's counter registry (engine totals + governor decision mix) as
// JSON to the given path, or to stdout when no path follows.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "governor/governor.hpp"
#include "governor/planning.hpp"
#include "graph/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "scenario/engine.hpp"
#include "scenario/fleet.hpp"

int main(int argc, char** argv) {
  using namespace daedvfs;

  std::string trace_path;
  std::string metrics_path;
  bool want_metrics = false;
  int days = 14;
  int fleet_nodes = 0;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics") {
      want_metrics = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') metrics_path = argv[++i];
    } else if (arg == "--days" && i + 1 < argc) {
      days = std::atoi(argv[++i]);
      if (days < 1) days = 1;
    } else if (arg == "--fleet" && i + 1 < argc) {
      fleet_nodes = std::atoi(argv[++i]);
      if (fleet_nodes < 0) fleet_nodes = 0;
    } else {
      pos.push_back(arg);
    }
  }
  std::string which = !pos.empty() ? pos[0] : "vww";
  const double low_soc = pos.size() > 1 ? std::atof(pos[1].c_str()) : 0.20;
  graph::Model model = [&] {
    if (which == "pd") return graph::zoo::make_person_detection();
    if (which == "mbv2") return graph::zoo::make_mbv2();
    which = "vww";
    return graph::zoo::make_vww();
  }();

  std::cout << "=== " << model.name() << " mission simulation ===\n";
  governor::GovernorConfig gcfg;
  gcfg.pipeline.space = dse::make_paper_design_space(
      power::PowerModel{gcfg.pipeline.explore.sim.power});
  const governor::ScheduleGovernor gov(model, gcfg);
  if (gov.rungs().empty()) {
    std::cerr << "no feasible schedule at any ladder slack for "
              << model.name() << "\n";
    return 1;
  }
  std::cout << "schedule ladder (" << gov.rungs().size()
            << " rungs, t_base " << std::fixed << std::setprecision(0)
            << gov.t_base_us() << " us):\n";
  for (const scenario::RungInfo& r : gov.rungs()) {
    std::cout << "  " << std::left << std::setw(9) << r.name << std::right
              << std::setprecision(0) << std::setw(8) << r.t_us << " us"
              << std::setprecision(1) << std::setw(9) << r.e_uj << " uJ"
              << "   " << std::setprecision(0)
              << r.entry_hfo.sysclk_mhz() << " MHz entry\n";
  }

  scenario::MissionSpec spec;
  spec.name = "sentry-2w";
  spec.horizon_s = days * 86400.0;
  spec.battery.capacity_mwh = 2400.0;
  spec.duty.period_s = 10.0;
  spec.duty.sleep_mw = 0.8;
  spec.base_qos_slack = gov.rungs().back().qos_slack + 0.10;
  const double tight = gov.rungs().front().qos_slack + 0.01;
  for (int day = 0; day < days; ++day) {
    const double base_s = day * 86400.0;
    spec.qos_events.push_back({base_s + 20000.0, tight});
    spec.qos_events.push_back({base_s + 24000.0, spec.base_qos_slack});
    spec.qos_events.push_back({base_s + 60000.0, tight});
    spec.qos_events.push_back({base_s + 66000.0, spec.base_qos_slack});
    spec.bursts.push_back({base_s + 20000.0, 4000.0, 1.0});
    spec.bursts.push_back({base_s + 60000.0, 6000.0, 1.0});
  }
  spec.low_battery_soc = low_soc;
  spec.low_battery_qos_slack = spec.base_qos_slack;

  const sim::SimParams& sim = gcfg.pipeline.explore.sim;
  std::cout << "\nmission: " << spec.horizon_s / 86400.0
            << " days, 1 frame/" << spec.duty.period_s
            << " s, 2 tracking phases/day (QoS +"
            << std::setprecision(0) << tight * 100.0 << "%, 1 frame/s)\n\n";

  std::cout << "policy              frames   misses  switches  energy(J)  "
               "battery life\n";
  auto print_row = [&](const scenario::MissionReport& r) {
    std::cout << std::left << std::setw(19) << r.policy << std::right
              << std::setw(7) << r.frames << std::setw(9)
              << r.deadline_misses << std::setw(10) << r.rung_switches
              << std::setprecision(1) << std::setw(11) << r.total_uj() / 1e6
              << std::setw(10) << r.lifetime_days(spec.battery)
              << " days\n";
  };
  print_row(simulate_mission(spec, gov, gov.t_base_us(), sim));
  for (const scenario::RungInfo& rung : gov.rungs()) {
    const scenario::StaticPolicy fixed(rung);
    print_row(simulate_mission(spec, fixed, gov.t_base_us(), sim));
  }

  std::cout << "\nReading: the governor matches the tightest static "
               "schedule's deadline record\nwhile spending close to the "
               "cheapest schedule's energy — static rungs either\nmiss "
               "tracking deadlines or waste energy on the relaxed phase.\n";

  // ---- v2: the same mission under field conditions — midday heat soaks
  // derate the clock (and scale battery leakage), a nightly uplink blackout
  // queues frames the governor drains back-to-back at dawn, and the
  // predictive variant pre-locks the next rung's PLL during sleep.
  scenario::MissionSpec v2 = spec;
  v2.name = "sentry-2w-v2";
  // Anchor the tracking bound inside the relock window above the ladder's
  // mixed rung when it has one: such a rung is mux-reachable only with a
  // pre-locked PLL — the predictive governor's lever (docs/scenarios.md).
  const power::PowerModel pm(sim.power);
  if (const auto anchor = scenario::find_prelock_anchor(
          gov.rungs(), gov.t_base_us(), sim.switching, pm)) {
    v2.qos_events.clear();
    for (int day = 0; day < days; ++day) {
      const double base_s = day * 86400.0;
      v2.qos_events.push_back({base_s + 20000.0, anchor->tight_slack});
      v2.qos_events.push_back({base_s + 24000.0, v2.base_qos_slack});
      v2.qos_events.push_back({base_s + 60000.0, anchor->tight_slack});
      v2.qos_events.push_back({base_s + 66000.0, v2.base_qos_slack});
    }
  }
  if (const auto thermal = scenario::find_thermal_anchor(gov.rungs())) {
    v2.derate = thermal->derate;
    for (int day = 0; day < days; ++day) {
      v2.temp_events.push_back({day * 86400.0 + 80000.0,
                                thermal->hot_ambient_c});
      v2.temp_events.push_back({day * 86400.0 + 84000.0, 25.0});
    }
  }
  v2.uplink_queue_frames = 256;
  for (int day = 0; day < days; ++day) {
    v2.connectivity.push_back({day * 86400.0, 40000.0});
    v2.connectivity.push_back({day * 86400.0 + 50000.0, 36400.0});
  }

  scenario::LadderPolicy pred(gov.rungs(), sim.switching, sim.power,
                              "governor+prelock", true);
  std::cout << "\n=== v2: heat soaks + nightly uplink blackout ===\n"
            << "policy              frames   misses  switches  energy(J)  "
               "battery life\n";
  const scenario::MissionReport rp =
      simulate_mission(v2, pred, gov.t_base_us(), sim);
  const scenario::MissionReport rr =
      simulate_mission(v2, gov, gov.t_base_us(), sim);
  print_row(rp);
  print_row(rr);
  std::cout << "\npredictive pre-lock: " << rp.prelocks << " sleeps relocked ("
            << rp.prelock_hits << " hits, " << rp.prelock_misses
            << " misses), " << std::setprecision(1) << rp.prelock_uj * 1e-6
            << " J spent off the wake path\nbacklog: max " << rp.max_backlog
            << " frames queued, " << std::setprecision(0)
            << rp.backlog_latency_s << " s of latency debt drained, "
            << rp.frames_dropped << " dropped\nthermal: "
            << rp.derated_frames << " derated frames, "
            << rp.thermal_violations << " violations\n";

  // ---- v3: energy model v2 — a solar panel charges the battery through
  // the day (rate-capped, thermally derated alongside the heat soaks) and
  // the radio prices every uplinked frame (PA ramp + 512 B at 250 kbit/s).
  // The mission-level Pareto front over (total energy, mean lateness) shows
  // where each policy sits in the energy/latency-debt trade
  // (docs/scenarios.md).
  scenario::MissionSpec v3 = v2;
  v3.name = "sentry-2w-v3";
  v3.battery.charge_rate_cap_mw = 5.0;
  v3.radio = {250.0, 512.0, 80.0, 1500.0};
  for (int day = 0; day < days; ++day) {
    const double base_s = day * 86400.0;
    v3.harvest_events.push_back({base_s + 21600.0, 2.5});
    v3.harvest_events.push_back({base_s + 28800.0, 6.0});
    v3.harvest_events.push_back({base_s + 72000.0, 2.5});
    v3.harvest_events.push_back({base_s + 82800.0, 0.0});
  }

  std::vector<scenario::MissionReport> v3_reports;
  v3_reports.push_back(simulate_mission(v3, pred, gov.t_base_us(), sim));
  v3_reports.push_back(simulate_mission(v3, gov, gov.t_base_us(), sim));
  for (const scenario::RungInfo& rung : gov.rungs()) {
    const scenario::StaticPolicy fixed(rung);
    v3_reports.push_back(simulate_mission(v3, fixed, gov.t_base_us(), sim));
  }
  const scenario::MissionReport& r3 = v3_reports.front();
  const scenario::MissionReport* cheapest_zero_miss = nullptr;
  for (const scenario::MissionReport& rep : v3_reports) {
    if (rep.deadline_misses == 0 &&
        (!cheapest_zero_miss ||
         rep.total_uj() < cheapest_zero_miss->total_uj())) {
      cheapest_zero_miss = &rep;
    }
  }
  std::cout << "\n=== v3: + solar harvesting and radio uplink costs ===\n"
            << "harvest: " << std::setprecision(1) << r3.harvested_mwh
            << " mWh stored over the mission (cap "
            << v3.battery.charge_rate_cap_mw << " mW), radio: "
            << r3.radio_uj * 1e-6 << " J for " << r3.frames
            << " uplinked frames\n\n"
            << "mission Pareto front, total energy (J) vs mean lateness "
               "(s):\n";
  for (const scenario::MissionParetoPoint& p :
       scenario::mission_pareto(v3_reports)) {
    std::cout << "  " << (p.on_front ? "* " : "  ") << std::left
              << std::setw(19) << p.policy << std::right
              << std::setprecision(1) << std::setw(8) << p.total_uj / 1e6
              << std::setprecision(3) << std::setw(10) << p.mean_lateness_s
              << (p.deadline_misses
                      ? "   (" + std::to_string(p.deadline_misses) +
                            " misses)"
                      : "")
              << "\n";
  }
  std::cout << "\nReading: '*' marks the front. Statics buy low lateness "
               "with energy (fast rungs)\nor low energy with overrun debt "
               "(slow rungs). Cheapest zero-miss policy: "
            << (cheapest_zero_miss ? cheapest_zero_miss->policy : "none")
            << ".\n";

  // ---- v4: the fault layer (scenario/faults.hpp) — a lossy uplink (3%
  // per-attempt loss, <=3 retries with jittered exponential backoff), three
  // 200 s link micro-blackouts per day with a watchdog reset striking 100 s
  // into each gap, and a hard radio outage every evening. The same node
  // runs twice: cold boot (a reset loses the backlog and the governor's
  // learned state) vs periodic GovernorCheckpoints every 60 s (a reset
  // restores the rung preference, miss EWMA and every queued frame captured
  // up to the checkpoint). Availability = delivered / offered frames.
  scenario::MissionSpec v4 = v3;
  v4.name = "sentry-2w-v4";
  v4.connectivity.clear();
  for (int day = 0; day < days; ++day) {
    const double base_s = day * 86400.0;
    v4.connectivity.push_back({base_s, 8000.0});
    v4.connectivity.push_back({base_s + 8200.0, 7800.0});
    v4.connectivity.push_back({base_s + 16200.0, 13800.0});
    v4.connectivity.push_back({base_s + 30200.0, 9800.0});
    v4.connectivity.push_back({base_s + 50000.0, 36400.0});
    v4.faults.resets.push_back({base_s + 8100.0});
    v4.faults.resets.push_back({base_s + 16100.0});
    v4.faults.resets.push_back({base_s + 30100.0});
    v4.faults.radio.outages.push_back({base_s + 55000.0, 300.0});
  }
  v4.faults.radio.loss_prob = 0.03;
  v4.faults.radio.max_retries = 3;
  v4.faults.radio.backoff_base_s = 0.05;
  v4.faults.radio.backoff_jitter = 0.2;
  v4.faults.reboot.boot_s = 5.0;
  v4.faults.reboot.boot_uj = 20000.0;
  scenario::MissionSpec v4_ckpt = v4;
  v4_ckpt.faults.reboot.checkpoint_interval_s = 60.0;
  v4_ckpt.faults.reboot.checkpoint_uj = 50.0;

  // The observed mission: the richest walkthrough (faults + checkpoints +
  // harvest + radio) under the predictive governor. The sink is attached to
  // this one simulate_mission only, so a --trace file carries nothing but
  // sim-time-stamped events and is byte-identical across runs and backends.
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  obs::Sink sink;
  if (!trace_path.empty()) sink.trace = &trace;
  if (want_metrics) sink.metrics = &metrics;
  obs::Sink* const mission_sink =
      sink.trace != nullptr || sink.metrics != nullptr ? &sink : nullptr;
  pred.set_sink(mission_sink);
  scenario::MissionReport warm =
      simulate_mission(v4_ckpt, pred, gov.t_base_us(), sim, mission_sink);
  pred.set_sink(nullptr);
  warm.policy += "+ckpt";
  const scenario::MissionReport cold =
      simulate_mission(v4, pred, gov.t_base_us(), sim);
  std::cout << "\n=== v4: + faults — lossy uplink, brownout resets, "
               "checkpoints ===\n"
            << "policy              avail   dropped  retries  txfail  "
               "resets  energy(J)\n";
  auto fault_row = [&](const scenario::MissionReport& r) {
    std::cout << std::left << std::setw(19) << r.policy << std::right
              << std::setprecision(4) << std::setw(7) << r.availability()
              << std::setw(9) << r.frames_dropped << std::setw(9)
              << r.retries << std::setw(8) << r.tx_failures << std::setw(8)
              << r.resets << std::setprecision(1) << std::setw(11)
              << r.total_uj() / 1e6 << "\n";
  };
  fault_row(warm);
  fault_row(cold);
  std::cout << "\nReading: every reset strikes while a micro-blackout's "
               "backlog is queued. The\ncold boot drops it ("
            << cold.frames_dropped - warm.frames_dropped
            << " more frames lost); the checkpointed node restores it\nand "
               "delivers "
            << warm.frames - cold.frames << " more frames for "
            << std::setprecision(2)
            << (warm.total_uj() - cold.total_uj()) / 1e6 << " J of "
            << warm.checkpoints << " checkpoints ("
            << std::setprecision(1) << warm.downtime_s
            << " s down either way).\n";

  // ---- v5 (--fleet N): the checkpointed v4 node, N of them. Every node
  // draws its own battery age, panel orientation, link quality and
  // microclimate from a stream seeded with (fleet seed ^ node id)
  // (scenario/fleet.hpp), all reading the one predictive ladder, fanned out
  // across the thread pool on the SoA batch engine. The aggregate is
  // byte-identical for any thread count (docs/scenarios.md).
  if (fleet_nodes > 0) {
    scenario::FleetSpec fl;
    fl.name = model.name() + "-fleet";
    fl.seed = 0x5e17f1ee7ULL;
    scenario::DeviceClass cls;
    cls.name = "sentry";
    cls.nodes = static_cast<std::uint32_t>(fleet_nodes);
    cls.base = v4_ckpt;
    cls.variation = {0.4, 0.5, 0.3, 8.0};
    cls.policy = &pred;
    cls.t_base_us = gov.t_base_us();
    cls.sim = sim;
    fl.classes.push_back(cls);

    const scenario::FleetReport fr = scenario::simulate_fleet(fl);
    std::cout << "\n=== v5: fleet of " << fr.nodes
              << " — seeded node spread, shared ladder, SoA fan-out ===\n"
              << "fleet availability " << std::setprecision(4)
              << fr.fleet_availability() << ", " << fr.depleted << "/"
              << fr.nodes << " nodes depleted, " << std::setprecision(1)
              << fr.total_energy_uj / 1e6 << " J total ("
              << fr.total_harvested_mwh << " mWh harvested)\n\n"
              << "per-node spread       p10       p50       p90       p99\n";
    const auto dist_row = [](const char* label,
                             const scenario::Distribution& d, double scale,
                             int prec) {
      std::cout << std::left << std::setw(17) << label << std::right
                << std::setprecision(prec) << std::setw(10) << d.p10 * scale
                << std::setw(10) << d.p50 * scale << std::setw(10)
                << d.p90 * scale << std::setw(10) << d.p99 * scale << "\n";
    };
    dist_row("energy (J)", fr.energy_uj, 1e-6, 1);
    dist_row("lateness (s)", fr.lateness_s, 1.0, 3);
    dist_row("availability", fr.availability, 1.0, 4);
    std::cout << "\nsurvival (fraction of nodes not battery-depleted):\n";
    const std::size_t stride =
        fr.survival.size() > 6 ? fr.survival.size() / 6 : 1;
    for (std::size_t i = stride - 1; i < fr.survival.size(); i += stride) {
      const scenario::FleetSurvivalPoint& p = fr.survival[i];
      std::cout << "  t=" << std::setprecision(1) << std::setw(9)
                << p.t_s / 3600.0 << " h   " << std::setprecision(3)
                << p.fraction << "\n";
    }
    std::cout << "\nReading: one ladder serves every node; the weak tail "
                 "(aged cells, shaded\npanels) sets the p99 energy and the "
                 "survival knee. The same aggregate is\nbyte-identical at "
                 "any thread count (DAEDVFS_THREADS).\n";
  }

  // ---- v6: the forecast-aware planning governor (governor/planning.hpp)
  // on the same faulted, checkpointed mission — plus duty-cycled uplinks
  // (radio_batch_frames = 8: one PA ramp amortized over eight payloads).
  // The planner reads the mission calendar as a MissionForecast, replays
  // the ladder rule over an 8-slot receding horizon at every decision, and
  // pre-locks the sleep PLL for the slot the forecast says comes next
  // instead of a frozen copy of the current one. Every reset invalidates
  // the plan (plan_invalidate trace instant); the next choose() replans
  // from the restored rung preference, so warm and cold reboots need no
  // planner-specific recovery path.
  {
    scenario::MissionSpec v6 = v4_ckpt;
    v6.name = "sentry-2w-v6";
    v6.radio_batch_frames = 8;
    governor::PlanningConfig pcfg;
    pcfg.horizon = 8;
    pcfg.forecast = governor::MissionForecast::from_spec(v6, gov.t_base_us());
    const governor::PlanningPolicy planner(gov.rungs(), sim.switching,
                                           sim.power, pcfg,
                                           "planner+forecast", true);
    scenario::MissionReport planned =
        simulate_mission(v6, planner, gov.t_base_us(), sim);
    planned.policy += "+ckpt";
    std::cout << "\n=== v6: + planning — 8-slot horizon replay, 8-frame tx "
                 "batches ===\n"
              << "policy              avail   dropped  retries  txfail  "
                 "resets  energy(J)\n";
    fault_row(planned);
    fault_row(warm);
    std::cout << "\nReading: batching pays the PA ramp once per eight "
                 "frames ("
              << std::setprecision(1) << (warm.radio_uj - planned.radio_uj) / 1e6
              << " J of radio\nenergy back) and the horizon replay spends "
                 "it where the calendar says the\nnext tracking burst or "
                 "window edge lands — same declared QoS, "
              << std::setprecision(4) << planned.availability()
              << "\navailability vs " << warm.availability()
              << " for the myopic checkpointed governor.\n";
  }

  if (!trace_path.empty()) {
    std::ofstream tf(trace_path, std::ios::binary);
    if (!tf) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return 1;
    }
    trace.write_chrome_json(tf);
    std::cout << "\ntrace: " << trace.size() << " events ("
              << trace.dropped() << " dropped) -> " << trace_path << "\n";
  }
  if (want_metrics) {
    if (metrics_path.empty()) {
      std::cout << "\n";
      metrics.write_json(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream mf(metrics_path, std::ios::binary);
      if (!mf) {
        std::cerr << "cannot open " << metrics_path << " for writing\n";
        return 1;
      }
      metrics.write_json(mf);
      mf << "\n";
      std::cout << "metrics -> " << metrics_path << "\n";
    }
  }
  return 0;
}
