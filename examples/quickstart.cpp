// Quickstart: the whole methodology in ~40 lines.
//
// Builds the VWW model, runs the three-step DAE+DVFS pipeline at a 30% QoS
// slack, and prints the energy comparison against the TinyEngine baselines.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "graph/zoo.hpp"

int main() {
  using namespace daedvfs;

  // 1. A model (deterministic int8 weights; see graph/zoo.hpp).
  const graph::Model model = graph::zoo::make_vww();
  const auto stats = model.stats();
  std::cout << "model " << model.name() << ": " << stats.num_layers
            << " layers, " << stats.total_macs / 1e6 << " MMACs, "
            << stats.num_dae_eligible << " DAE-eligible layers\n\n";

  // 2. Pipeline configuration: the paper's design space on the simulated
  //    STM32F767ZI, 30% latency slack over TinyEngine at 216 MHz.
  core::PipelineConfig cfg;
  cfg.qos_slack = 0.30;
  cfg.explore.sim = sim::SimParams{};  // Nucleo-F767ZI defaults
  cfg.space =
      dse::make_paper_design_space(power::PowerModel{cfg.explore.sim.power});

  // 3. Run: DAE enabling -> per-layer DSE -> MCKP -> schedule -> evaluation.
  const core::PipelineResult result = core::Pipeline(cfg).run(model);

  core::print_summary(std::cout, result);
  std::cout << "\n";
  core::print_layer_map(std::cout, result);
  return 0;
}
