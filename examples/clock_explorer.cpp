// Interactive clock-tree explorer for the STM32F7 RCC model.
//
//   $ ./build/examples/clock_explorer           # all reachable frequencies
//   $ ./build/examples/clock_explorer 100       # all tuples hitting 100 MHz
//
// For a target frequency it lists every programmable {HSE, PLLM, PLLN, PLLP}
// tuple with its VCO frequency, voltage scale and modeled power, and marks
// the minimum-power pick — the selection rule of the paper's Fig. 2.
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "clock/clock_tree.hpp"
#include "power/power_model.hpp"

int main(int argc, char** argv) {
  using namespace daedvfs;

  clock::EnumerationSpace space;  // wide default space
  const power::PowerModel pm;

  if (argc < 2) {
    std::cout << "Reachable SYSCLK frequencies in the default space "
                 "(pass one as an argument to expand):\n ";
    for (double f : clock::reachable_sysclks(space)) {
      std::cout << " " << f;
    }
    std::cout << "\nExample: clock_explorer 100\n";
    return 0;
  }

  const double target = std::atof(argv[1]);
  const auto configs = clock::enumerate_pll_configs(space, target);
  if (configs.empty()) {
    std::cout << "No valid PLL configuration reaches " << target
              << " MHz in the default space.\n";
    return 1;
  }

  const auto best = clock::min_power_config(
      space, target,
      [&](const clock::ClockConfig& c) { return pm.config_power_mw(c); });

  std::cout << "Configurations for SYSCLK = " << target << " MHz:\n";
  std::cout << "  HSE   M    N   P   VCO(MHz)  scale      power(mW)\n";
  std::cout << std::fixed;
  for (const auto& cfg : configs) {
    const auto& p = *cfg.pll;
    std::cout << "  " << std::setw(3) << std::setprecision(0) << p.input_mhz
              << std::setw(4) << p.pllm << std::setw(5) << p.plln
              << std::setw(4) << p.pllp << "   " << std::setw(7)
              << p.vco_mhz() << "   " << std::left << std::setw(9)
              << clock::to_string(cfg.voltage_scale()) << std::right
              << std::setw(10) << std::setprecision(1)
              << pm.config_power_mw(cfg)
              << (best && cfg == *best ? "   <- min power" : "") << "\n";
  }
  return 0;
}
