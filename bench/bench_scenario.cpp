// Deployment scenario benchmark — the acceptance artifacts of the
// scenario/governor subsystem, emitted as BENCH_scenario.json:
//
//  1. Mission comparison: a day/night "sentry" mission (relaxed QoS most of
//     the time, tight-QoS + frame-rate-burst tracking phases) is simulated
//     for the adaptive governor and for every static ladder rung. The
//     governor must finish with zero deadline misses AND less total energy
//     than the best static schedule that also never misses.
//
//  2. QoS-repair speedup: schedule construction with the repair loop driven
//     by whole-schedule replay (one recording simulation + closed-form
//     re-evaluation per swap, granularity swaps patched by single-layer
//     re-records) vs exact_simulation (one full simulation per swap). Final
//     schedules must be identical, the replay path must report exactly ONE
//     full simulation (zero re-simulations); full mode also gates the
//     speedup at >= 5x.
//
//  3. v2 mission (thermal derating + connectivity windows) on the Person
//     Detection ladder: the predictive (PLL pre-lock) governor must beat
//     BOTH the PR 2 reactive governor AND every zero-miss static rung on
//     total energy, with zero deadline misses and zero thermal violations.
//     The lever: the ladder's cheapest tight-capable rung enters at a
//     different clock than it exits, so holding it reactively pays a
//     wrap-around PLL relock on the wake path every frame — pre-locking
//     during sleep makes it mux-reachable inside the tight bound.
//
//  4. Harvest + radio mission & the mission Pareto front: the v2 mission
//     plus a daytime solar profile (charge-rate-capped, panel thermal
//     derating) and a radio model pricing every uplinked frame. Every
//     policy (predictive, reactive, all statics) lands in the mission-level
//     (total energy, mean lateness) plane; the emitted Pareto analysis must
//     place >= 3 static schedules in that plane and the predictive governor
//     must sit on the front.
//
//  5. Fault mission & the availability front: the harvest+radio mission
//     plus the fault layer — a lossy uplink with bounded retries, per-day
//     link micro-blackouts with a watchdog reset striking mid-gap, and a
//     hard radio outage. Each governor runs cold-boot and checkpointed; the
//     checkpointed predictive governor must sit on the (total energy,
//     availability) front AND strictly dominate the cold-boot reactive
//     governor (more delivered frames for less energy).
//
//   $ ./build/bench_scenario                 # VWW + PD v2, full checks
//   $ ./build/bench_scenario mbv2 out.json
//   $ ./build/bench_scenario smoke           # small model, CI-fast
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/schedule_builder.hpp"
#include "dse/profile_cache.hpp"
#include "governor/governor.hpp"
#include "governor/planning.hpp"
#include "graph/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "scenario/engine.hpp"
#include "util/json_writer.hpp"

using namespace daedvfs;

namespace {

double wall_ms(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "vww";
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_scenario.json";
  const bool smoke = which == "smoke";

  // Smoke mode runs the smallest zoo model over a one-day mission with
  // fewer timing repetitions — CI-fast, same checks minus the timing gate.
  const graph::Model model = which == "pd" ? graph::zoo::make_person_detection()
                             : which == "mbv2" ? graph::zoo::make_mbv2()
                             : smoke ? graph::zoo::make_person_detection()
                                     : graph::zoo::make_vww();

  // One ProfileCache serves the governor ladder AND the repair-speedup
  // section below — the second exploration is answered entirely from cache.
  dse::ProfileCache cache;
  governor::GovernorConfig gcfg;
  gcfg.qos_slacks = {0.10, 0.15, 0.20, 0.30, 0.50, 0.75};
  gcfg.pipeline.space = dse::make_paper_design_space(
      power::PowerModel{gcfg.pipeline.explore.sim.power});
  gcfg.pipeline.explore.cache = &cache;
  if (smoke) gcfg.pipeline.mckp_ticks = 5000;

  std::cout << "building governor ladder for " << model.name() << "...\n";
  const auto t_ladder = std::chrono::steady_clock::now();
  const governor::ScheduleGovernor gov(model, gcfg);
  const double ladder_ms = wall_ms(t_ladder);
  const auto& rungs = gov.rungs();
  std::cout << "  " << rungs.size() << " rungs in " << ladder_ms << " ms\n";
  if (rungs.size() < 2) {
    std::cerr << "ladder collapsed to " << rungs.size() << " rung(s)\n";
    return 1;
  }

  // ---- Mission: relaxed sentry duty with two tracking phases per day.
  // Deadlines are anchored on the ladder so the comparison is meaningful on
  // every model: tight phases sit just above the tightest rung (reachable
  // only by it), the base sits above the loosest rung.
  const sim::SimParams& sim = gcfg.pipeline.explore.sim;
  scenario::MissionSpec spec;
  spec.name = "sentry";
  spec.horizon_s = (smoke ? 1.0 : 14.0) * 86400.0;
  spec.duty.period_s = 10.0;
  spec.duty.sleep_mw = 0.8;
  spec.base_qos_slack = rungs.back().qos_slack + 0.10;
  const double tight_slack = rungs.front().qos_slack + 0.01;
  for (int day = 0; spec.horizon_s - day * 86400.0 > 0; ++day) {
    const double base_s = day * 86400.0;
    spec.qos_events.push_back({base_s + 20000.0, tight_slack});
    spec.qos_events.push_back({base_s + 24000.0, spec.base_qos_slack});
    spec.qos_events.push_back({base_s + 60000.0, tight_slack});
    spec.qos_events.push_back({base_s + 66000.0, spec.base_qos_slack});
    spec.bursts.push_back({base_s + 20000.0, 4000.0, 1.0});
    spec.bursts.push_back({base_s + 60000.0, 6000.0, 1.0});
  }

  const scenario::MissionReport gov_report =
      simulate_mission(spec, gov, gov.t_base_us(), sim);
  std::vector<scenario::MissionReport> static_reports;
  bool have_static = false;
  double best_static_uj = 0.0;
  std::string best_static;
  for (const scenario::RungInfo& rung : rungs) {
    const scenario::StaticPolicy fixed(rung);
    static_reports.push_back(
        simulate_mission(spec, fixed, gov.t_base_us(), sim));
    const scenario::MissionReport& r = static_reports.back();
    if (r.deadline_misses == 0 &&
        (!have_static || r.total_uj() < best_static_uj)) {
      best_static_uj = r.total_uj();
      best_static = r.policy;
      have_static = true;
    }
  }
  const bool governor_zero_miss = gov_report.deadline_misses == 0;
  const bool governor_wins =
      governor_zero_miss && have_static && gov_report.total_uj() < best_static_uj;
  std::cout << "  governor: " << gov_report.total_uj() / 1e6 << " J, "
            << gov_report.deadline_misses << " misses, "
            << gov_report.rung_switches << " rung switches\n"
            << "  best zero-miss static: "
            << (have_static ? best_static_uj / 1e6 : 0.0) << " J ("
            << (have_static ? best_static : "none") << ")\n";

  // ---- QoS-repair speedup: replay-backed vs exact-simulation repair.
  // Without the MCKP switch-overhead reserve the measured schedule overruns
  // the window and the repair loop has real work to do on every model.
  core::PipelineConfig rcfg = gcfg.pipeline;
  rcfg.reserve_switch_overhead = false;

  runtime::InferenceEngine engine(model);
  dse::ExploreOptions eopts = rcfg.explore;  // shared cache: all hits
  const auto sets = dse::explore_model(model, rcfg.space, eopts);

  // Pick a slack where the repair loop actually has work (the un-reserved
  // switch overhead must overrun the window) — model-dependent.
  double repair_slack = 0.10;
  double qos_us = gov.t_base_us() * (1.0 + repair_slack);
  for (double probe : {0.10, 0.05, 0.15, 0.20, 0.30}) {
    const double probe_qos = gov.t_base_us() * (1.0 + probe);
    const core::ScheduleBuilder builder(model, engine, rcfg);
    mckp::DpWorkspace ws;
    const core::BuiltSchedule probed = builder.build(sets, probe_qos, ws);
    if (probed.feasible && probed.repair_iterations > 0) {
      repair_slack = probe;
      qos_us = probe_qos;
      break;
    }
  }

  const int reps = smoke ? 3 : 10;
  struct RepairRun {
    double ms = 0.0;
    core::BuiltSchedule built;
  };
  auto timed_build = [&](bool exact, int max_repair) {
    core::PipelineConfig cfg = rcfg;
    cfg.exact_simulation = exact;
    cfg.max_repair_iterations = max_repair;
    const core::ScheduleBuilder builder(model, engine, cfg);
    RepairRun rr;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      mckp::DpWorkspace ws;
      rr.built = builder.build(sets, qos_us, ws);
    }
    rr.ms = wall_ms(t0) / reps;
    return rr;
  };
  std::cout << "repair loop (exact simulation)...\n";
  const RepairRun exact = timed_build(true, rcfg.max_repair_iterations);
  std::cout << "repair loop (whole-schedule replay)...\n";
  const RepairRun replay = timed_build(false, rcfg.max_repair_iterations);
  // Fixed build cost (MCKP + smoothing, no measurement) for the subtraction.
  const RepairRun norepair = timed_build(false, 0);

  const bool schedules_identical =
      exact.built.feasible == replay.built.feasible &&
      runtime::plans_identical(exact.built.schedule, replay.built.schedule);
  const double build_speedup = replay.ms > 0.0 ? exact.ms / replay.ms : 0.0;
  // Repair phase alone: build time minus the repair-free fixed cost. Both
  // flavors keep their initial recording/measurement inside this figure.
  const double exact_repair_ms = exact.ms - norepair.ms;
  const double replay_repair_ms = replay.ms - norepair.ms;
  const double repair_speedup =
      replay_repair_ms > 0.0 ? exact_repair_ms / replay_repair_ms : 0.0;
  std::cout << "  exact:  " << exact.ms << " ms/build ("
            << exact.built.repair_iterations << " swaps, "
            << exact.built.repair_simulations << " sims)\n"
            << "  replay: " << replay.ms << " ms/build ("
            << replay.built.repair_iterations << " swaps, "
            << replay.built.repair_simulations << " sims, "
            << replay.built.repair_layer_recordings
            << " granularity layer re-records)\n"
            << "  fixed (repair off): " << norepair.ms << " ms/build\n"
            << "  repair-phase speedup " << repair_speedup
            << "x (whole build " << build_speedup << "x), schedules "
            << (schedules_identical ? "identical" : "MISMATCH") << "\n";

  // PipelineResult counters: granularity swaps must not re-simulate — the
  // replay path records exactly once no matter what the repair loop swaps.
  core::PipelineConfig pipe_cfg = rcfg;
  pipe_cfg.qos_slack = repair_slack;
  const core::PipelineResult pipe_res =
      core::Pipeline(pipe_cfg).run(model, &sets);
  const bool zero_resimulations =
      replay.built.repair_simulations == 1 &&
      (!pipe_res.mckp_feasible || pipe_res.repair_simulations == 1);
  std::cout << "  pipeline repair counters: " << pipe_res.repair_iterations
            << " swaps, " << pipe_res.repair_simulations << " simulations, "
            << pipe_res.repair_layer_recordings << " layer re-records\n";

  // ---- v2 mission: thermal derating + connectivity windows + predictive
  // pre-lock, on the Person Detection ladder (its cheapest tight-capable
  // rung is "mixed": entry clock != exit clock).
  const bool v2_reuses_ladder = smoke || which == "pd";
  const graph::Model v2_model =
      v2_reuses_ladder ? model : graph::zoo::make_person_detection();
  std::optional<governor::ScheduleGovernor> v2_built;
  if (!v2_reuses_ladder) {
    std::cout << "building v2 governor ladder for " << v2_model.name()
              << "...\n";
    v2_built.emplace(v2_model, gcfg);
  }
  const governor::ScheduleGovernor& v2_gov =
      v2_reuses_ladder ? gov : *v2_built;
  const auto& v2_rungs = v2_gov.rungs();
  const double v2_tbase = v2_gov.t_base_us();
  const power::PowerModel pm(sim.power);

  // The pre-lock lever: a mixed rung (wrap-around relock) with a faster,
  // pricier wrap-free alternative the reactive governor gets pinned on
  // during tight phases, and a deadline anchored inside the relock window.
  const std::optional<scenario::PrelockAnchor> anchor =
      scenario::find_prelock_anchor(v2_rungs, v2_tbase, sim.switching, pm);
  const bool prelock_structure = anchor.has_value();
  const double v2_tight = prelock_structure
                              ? anchor->tight_slack
                              : v2_rungs.front().qos_slack + 0.01;
  const std::optional<scenario::ThermalAnchor> thermal =
      scenario::find_thermal_anchor(v2_rungs);

  scenario::MissionSpec v2;
  v2.name = "sentry-v2";
  v2.horizon_s = (smoke ? 1.0 : 2.0) * 86400.0;
  v2.duty.period_s = 10.0;
  v2.duty.sleep_mw = 0.8;
  v2.base_qos_slack = v2_rungs.back().qos_slack + 0.10;
  v2.uplink_queue_frames = 256;
  if (thermal) v2.derate = thermal->derate;
  for (int day = 0; v2.horizon_s - day * 86400.0 > 0; ++day) {
    const double base_s = day * 86400.0;
    // Two tracking phases (tight bound + frame-rate burst)...
    v2.qos_events.push_back({base_s + 20000.0, v2_tight});
    v2.qos_events.push_back({base_s + 26000.0, v2.base_qos_slack});
    v2.qos_events.push_back({base_s + 60000.0, v2_tight});
    v2.qos_events.push_back({base_s + 70000.0, v2.base_qos_slack});
    v2.bursts.push_back({base_s + 20000.0, 6000.0, 2.0});
    v2.bursts.push_back({base_s + 60000.0, 10000.0, 1.0});
    // ...a midday heat soak capping the clock between the PLL families...
    if (thermal) {
      v2.temp_events.push_back({base_s + 80000.0, thermal->hot_ambient_c});
      v2.temp_events.push_back({base_s + 84000.0, 25.0});
    }
    // ...and an uplink blackout whose backlog the governor drains after.
    v2.connectivity.push_back({base_s, 40000.0});
    v2.connectivity.push_back({base_s + 50000.0, 36400.0});
  }

  const scenario::LadderPolicy v2_pred(v2_rungs, sim.switching, sim.power,
                                       "governor+prelock", true);
  const scenario::LadderPolicy v2_reac(v2_rungs, sim.switching, sim.power,
                                       "governor", false);
  const scenario::MissionReport rp =
      simulate_mission(v2, v2_pred, v2_tbase, sim);
  const scenario::MissionReport rr =
      simulate_mission(v2, v2_reac, v2_tbase, sim);
  std::vector<scenario::MissionReport> v2_static_reports;
  bool v2_have_static = false;
  double v2_best_static_uj = 0.0;
  std::string v2_best_static;
  for (const scenario::RungInfo& rung : v2_rungs) {
    const scenario::StaticPolicy fixed(rung);
    v2_static_reports.push_back(simulate_mission(v2, fixed, v2_tbase, sim));
    const scenario::MissionReport& rs = v2_static_reports.back();
    if (rs.deadline_misses == 0 &&
        (!v2_have_static || rs.total_uj() < v2_best_static_uj)) {
      v2_best_static_uj = rs.total_uj();
      v2_best_static = rs.policy;
      v2_have_static = true;
    }
  }
  const bool v2_pred_clean = rp.deadline_misses == 0 &&
                             rp.thermal_violations == 0;
  const bool v2_beats_reactive = rp.total_uj() < rr.total_uj();
  const bool v2_beats_static =
      v2_have_static && rp.total_uj() < v2_best_static_uj;
  std::cout << "v2 mission (" << v2_model.name() << ", derate + windows):\n"
            << "  predictive: " << rp.total_uj() / 1e6 << " J, "
            << rp.deadline_misses << " misses, " << rp.prelocks
            << " prelocks (" << rp.prelock_hits << " hits), backlog debt "
            << rp.backlog_latency_s << " s\n"
            << "  reactive:   " << rr.total_uj() / 1e6 << " J, "
            << rr.deadline_misses << " misses\n"
            << "  best zero-miss static: "
            << (v2_have_static ? v2_best_static_uj / 1e6 : 0.0) << " J ("
            << (v2_have_static ? v2_best_static : "none") << ")\n";

  // ---- Harvest + radio mission: the v2 field conditions plus a daytime
  // solar profile charging the battery between frames and a radio pricing
  // every uplinked frame. The mission-level Pareto front over (total
  // energy, mean lateness) is the acceptance artifact: the predictive
  // governor must sit on it.
  scenario::MissionSpec v3 = v2;
  v3.name = "sentry-v3-harvest-radio";
  v3.battery.charge_rate_cap_mw = 5.0;
  v3.radio.link_kbps = 250.0;   // ~512 B at 250 kbit/s + 1.5 ms PA ramp
  v3.radio.payload_bytes = 512.0;
  v3.radio.tx_mw = 80.0;
  v3.radio.ramp_us = 1500.0;
  for (int day = 0; v3.horizon_s - day * 86400.0 > 0; ++day) {
    const double base_s = day * 86400.0;
    // Sunrise ramp, a midday plateau that overlaps the heat soak (panel
    // thermal derating engages), and sunset back to zero.
    v3.harvest_events.push_back({base_s + 21600.0, 2.5});
    v3.harvest_events.push_back({base_s + 28800.0, 6.0});
    v3.harvest_events.push_back({base_s + 72000.0, 2.5});
    v3.harvest_events.push_back({base_s + 82800.0, 0.0});
  }

  std::vector<scenario::MissionReport> v3_reports;
  v3_reports.push_back(simulate_mission(v3, v2_pred, v2_tbase, sim));
  v3_reports.push_back(simulate_mission(v3, v2_reac, v2_tbase, sim));
  for (const scenario::RungInfo& rung : v2_rungs) {
    v3_reports.push_back(
        simulate_mission(v3, scenario::StaticPolicy(rung), v2_tbase, sim));
  }
  const scenario::MissionReport& v3_pred = v3_reports.front();
  double v3_peak_harvest_mw = v3.base_harvest_mw;
  for (const scenario::HarvestEvent& h : v3.harvest_events) {
    v3_peak_harvest_mw = std::max(v3_peak_harvest_mw, h.intake_mw);
  }
  const std::vector<scenario::MissionParetoPoint> pareto =
      scenario::mission_pareto(v3_reports);
  const bool predictive_on_front = pareto.front().on_front;
  const std::size_t v3_statics = v3_reports.size() - 2;
  const bool v3_exercised =
      v3_pred.harvested_mwh > 0.0 && v3_pred.radio_uj > 0.0;
  std::cout << "harvest+radio mission (" << v2_model.name()
            << "), Pareto front over (energy, mean lateness):\n";
  for (const scenario::MissionParetoPoint& p : pareto) {
    std::cout << "  " << (p.on_front ? "* " : "  ") << p.policy << ": "
              << p.total_uj / 1e6 << " J, mean lateness "
              << p.mean_lateness_s << " s, max debt " << p.max_latency_debt_s
              << " s, " << p.deadline_misses << " misses\n";
  }
  std::cout << "  predictive harvested " << v3_pred.harvested_mwh
            << " mWh, radio " << v3_pred.radio_uj / 1e6 << " J\n";

  // ---- Fault mission & the availability front: the harvest+radio field
  // conditions plus the fault layer (scenario/faults.hpp) — a lossy uplink
  // (3% per-attempt loss, bounded retries with jittered backoff), three
  // 200 s link micro-blackouts per day with a watchdog reset striking 100 s
  // into each gap (while the backlog it threatens is still queued), and a
  // hard radio outage every evening. Each governor runs in two recovery
  // postures: cold boot (queue lost, governor state reset) vs periodic
  // GovernorCheckpoints (60 s interval) restoring rung preference, miss
  // EWMA and the backlog captured up to the checkpoint. The acceptance
  // artifact is the (total energy, availability) front: the checkpointed
  // predictive governor must sit on it AND strictly dominate the cold-boot
  // reactive governor — more delivered frames for less energy.
  scenario::MissionSpec v4 = v3;
  v4.name = "sentry-v4-faults";
  v4.connectivity.clear();
  for (int day = 0; v4.horizon_s - day * 86400.0 > 0; ++day) {
    const double base_s = day * 86400.0;
    // The v3 daytime window with three 200 s micro-blackouts punched in;
    // short enough that the bounded queue holds every gap's frames, so the
    // only way to lose them is a cold boot.
    v4.connectivity.push_back({base_s, 8000.0});
    v4.connectivity.push_back({base_s + 8200.0, 7800.0});
    v4.connectivity.push_back({base_s + 16200.0, 13800.0});
    v4.connectivity.push_back({base_s + 30200.0, 9800.0});
    v4.connectivity.push_back({base_s + 50000.0, 36400.0});
    v4.faults.resets.push_back({base_s + 8100.0});
    v4.faults.resets.push_back({base_s + 16100.0});
    v4.faults.resets.push_back({base_s + 30100.0});
    v4.faults.radio.outages.push_back({base_s + 55000.0, 300.0});
  }
  v4.faults.radio.loss_prob = 0.03;
  v4.faults.radio.max_retries = 3;
  v4.faults.radio.backoff_base_s = 0.05;
  v4.faults.radio.backoff_jitter = 0.2;
  v4.faults.reboot.boot_s = 5.0;
  v4.faults.reboot.boot_uj = 20000.0;
  scenario::MissionSpec v4_ckpt = v4;
  v4_ckpt.faults.reboot.checkpoint_interval_s = 60.0;
  v4_ckpt.faults.reboot.checkpoint_uj = 50.0;

  std::vector<scenario::MissionReport> v4_reports;
  v4_reports.push_back(simulate_mission(v4_ckpt, v2_pred, v2_tbase, sim));
  v4_reports.back().policy += "+ckpt";
  v4_reports.push_back(simulate_mission(v4, v2_pred, v2_tbase, sim));
  v4_reports.push_back(simulate_mission(v4_ckpt, v2_reac, v2_tbase, sim));
  v4_reports.back().policy += "+ckpt";
  v4_reports.push_back(simulate_mission(v4, v2_reac, v2_tbase, sim));
  for (const scenario::RungInfo& rung : v2_rungs) {
    v4_reports.push_back(
        simulate_mission(v4, scenario::StaticPolicy(rung), v2_tbase, sim));
  }
  const scenario::MissionReport& v4_warm = v4_reports.front();
  const scenario::MissionReport& v4_cold_reac = v4_reports[3];
  const std::vector<scenario::AvailabilityParetoPoint> v4_front =
      scenario::availability_pareto(v4_reports);
  const bool v4_warm_on_front = v4_front.front().on_front;
  const bool v4_warm_dominates =
      v4_warm.total_uj() < v4_cold_reac.total_uj() &&
      v4_warm.availability() > v4_cold_reac.availability();
  const bool v4_exercised = v4_warm.resets > 0 && v4_warm.checkpoints > 0 &&
                            v4_warm.retries > 0 && v4_warm.tx_failures > 0;
  std::cout << "fault mission (" << v2_model.name()
            << "), availability front over (energy, availability):\n";
  for (const scenario::AvailabilityParetoPoint& p : v4_front) {
    std::cout << "  " << (p.on_front ? "* " : "  ") << p.policy << ": "
              << p.total_uj / 1e6 << " J, availability " << p.availability
              << ", " << p.resets << " resets, " << p.retries << " retries, "
              << p.tx_failures << " tx failures, fault energy "
              << p.fault_uj / 1e6 << " J\n";
  }
  std::cout << "  warm-vs-cold: ckpt predictive " << v4_warm.frames
            << " frames / " << v4_warm.total_uj() / 1e6
            << " J vs cold reactive " << v4_cold_reac.frames << " frames / "
            << v4_cold_reac.total_uj() / 1e6 << " J — dominates="
            << (v4_warm_dominates ? "yes" : "NO") << "\n";

  // ---- Planning mission & the planner gates (PR 10). The PR 4 predictive
  // governor is the baseline SYSTEM; the planner system adds (a) the MPC
  // receding-horizon replan over the mission's own event calendar
  // (governor/planning.hpp) and (b) radio duty-cycling — 8-frame PA-ramp
  // batches priced through the same RadioModel and netted into the
  // catch-up budget. The acceptance artifact is dominance on BOTH fronts:
  // the harvest+radio mission's (energy, mean lateness) plane and the
  // fault mission's (energy, availability) plane — at most the baseline's
  // cost on one axis and at least its quality on the other, never worse
  // on either. The planner points get their own report sets here; the v3
  // and v4 sections above stay exactly the PR 4-era comparisons.
  const std::uint32_t v5_horizon = 8;
  const std::uint32_t v5_batch = 8;
  scenario::MissionSpec v5 = v3;
  v5.name = "sentry-v5-planned";
  v5.radio_batch_frames = v5_batch;
  governor::PlanningConfig v5_cfg;
  v5_cfg.horizon = v5_horizon;
  v5_cfg.forecast = governor::MissionForecast::from_spec(v5, v2_tbase);
  governor::PlanningPolicy v5_planner(v2_rungs, sim.switching, sim.power,
                                      v5_cfg, "planner+forecast", true);
  obs::MetricsRegistry v5_mx;
  obs::Sink v5_sink{nullptr, &v5_mx};
  v5_planner.set_sink(&v5_sink);
  std::vector<scenario::MissionReport> v5_reports;
  v5_reports.push_back(simulate_mission(v5, v5_planner, v2_tbase, sim));
  v5_planner.set_sink(nullptr);
  const std::uint64_t v5_replans = v5_mx.counter("planner.replans").value();
  const std::uint64_t v5_overrides =
      v5_mx.counter("planner.overrides").value();
  v5_reports.push_back(v3_reports[0]);  // predictive governor, per-frame tx
  v5_reports.push_back(v3_reports[1]);  // reactive governor, per-frame tx
  const scenario::MissionReport& v5_plan = v5_reports.front();
  const std::vector<scenario::MissionParetoPoint> v5_front =
      scenario::mission_pareto(v5_reports);
  const bool v5_dominates_lateness =
      v5_plan.total_uj() <= v3_pred.total_uj() &&
      v5_plan.mean_lateness_s() <= v3_pred.mean_lateness_s();

  scenario::MissionSpec v5f = v4_ckpt;
  v5f.name = "sentry-v5-faults-planned";
  v5f.radio_batch_frames = v5_batch;
  governor::PlanningConfig v5f_cfg;
  v5f_cfg.horizon = v5_horizon;
  v5f_cfg.forecast = governor::MissionForecast::from_spec(v5f, v2_tbase);
  governor::PlanningPolicy v5f_planner(v2_rungs, sim.switching, sim.power,
                                       v5f_cfg, "planner+forecast", true);
  std::vector<scenario::MissionReport> v5f_reports;
  v5f_reports.push_back(simulate_mission(v5f, v5f_planner, v2_tbase, sim));
  v5f_reports.back().policy += "+ckpt";
  v5f_reports.push_back(v4_warm);       // ckpt predictive, per-frame tx
  v5f_reports.push_back(v4_cold_reac);  // cold reactive, per-frame tx
  const scenario::MissionReport& v5f_plan = v5f_reports.front();
  const std::vector<scenario::AvailabilityParetoPoint> v5f_front =
      scenario::availability_pareto(v5f_reports);
  const bool v5_dominates_availability =
      v5f_plan.total_uj() <= v4_warm.total_uj() &&
      v5f_plan.availability() >= v4_warm.availability();
  const bool v5_exercised =
      v5_replans > 0 && v5_plan.radio_uj > 0.0 && v5f_plan.resets > 0;
  std::cout << "planning mission (" << v2_model.name() << "), horizon "
            << v5_horizon << " slots, " << v5_batch << "-frame tx batches:\n"
            << "  lateness front:     planner " << v5_plan.total_uj() / 1e6
            << " J / " << v5_plan.mean_lateness_s() << " s vs predictive "
            << v3_pred.total_uj() / 1e6 << " J / "
            << v3_pred.mean_lateness_s() << " s — dominates="
            << (v5_dominates_lateness ? "yes" : "NO") << "\n"
            << "  availability front: planner " << v5f_plan.total_uj() / 1e6
            << " J / " << v5f_plan.availability() << " vs ckpt predictive "
            << v4_warm.total_uj() / 1e6 << " J / " << v4_warm.availability()
            << " — dominates=" << (v5_dominates_availability ? "yes" : "NO")
            << "\n"
            << "  " << v5_replans << " replans, " << v5_overrides
            << " plan overrides of the myopic pick\n";

  // ---- Emit BENCH_scenario.json.
  std::ofstream os(out_path);
  os.precision(6);
  os << "{\n  \"model\": " << util::json_quoted(model.name()) << ",\n"
     << "  \"t_base_us\": " << gov.t_base_us() << ",\n"
     << "  \"ladder_build_ms\": " << ladder_ms << ",\n"
     << "  \"ladder\": [\n";
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    os << "    {\"name\": " << util::json_quoted(rungs[i].name) << ", \"qos_slack\": "
       << rungs[i].qos_slack << ", \"t_us\": " << rungs[i].t_us
       << ", \"e_uj\": " << rungs[i].e_uj << "}"
       << (i + 1 < rungs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"mission\": {\"horizon_s\": " << spec.horizon_s
     << ", \"base_qos_slack\": " << spec.base_qos_slack
     << ", \"tight_qos_slack\": " << tight_slack
     << ", \"bursts_per_day\": 2},\n"
     << "  \"policies\": [\n";
  write_json(os, gov_report, 4);
  for (const scenario::MissionReport& r : static_reports) {
    os << ",\n";
    write_json(os, r, 4);
  }
  os << "\n  ],\n"
     << "  \"governor_zero_misses\": "
     << util::json_bool(governor_zero_miss) << ",\n"
     << "  \"best_zero_miss_static\": \""
     << (have_static ? best_static : "none") << "\",\n"
     << "  \"best_zero_miss_static_uj\": " << best_static_uj << ",\n"
     << "  \"governor_total_uj\": " << gov_report.total_uj() << ",\n"
     << "  \"governor_beats_best_static\": "
     << util::json_bool(governor_wins) << ",\n"
     << "  \"repair\": {\n"
     << "    \"qos_slack\": " << repair_slack << ",\n"
     << "    \"swaps\": " << replay.built.repair_iterations << ",\n"
     << "    \"fixed_build_ms\": " << norepair.ms << ",\n"
     << "    \"exact\": {\"build_ms\": " << exact.ms
     << ", \"repair_ms\": " << exact_repair_ms
     << ", \"simulations\": " << exact.built.repair_simulations << "},\n"
     << "    \"replay\": {\"build_ms\": " << replay.ms
     << ", \"repair_ms\": " << replay_repair_ms
     << ", \"simulations\": " << replay.built.repair_simulations
     << ", \"layer_rerecords\": " << replay.built.repair_layer_recordings
     << "},\n"
     << "    \"pipeline_counters\": {\"iterations\": "
     << pipe_res.repair_iterations
     << ", \"simulations\": " << pipe_res.repair_simulations
     << ", \"layer_rerecords\": " << pipe_res.repair_layer_recordings
     << "},\n"
     << "    \"zero_resimulations\": "
     << util::json_bool(zero_resimulations) << ",\n"
     << "    \"repair_speedup\": " << repair_speedup << ",\n"
     << "    \"build_speedup\": " << build_speedup << ",\n"
     << "    \"schedules_identical\": "
     << util::json_bool(schedules_identical) << "\n"
     << "  },\n"
     << "  \"mission_v2\": {\n"
     << "    \"model\": " << util::json_quoted(v2_model.name()) << ",\n"
     << "    \"horizon_s\": " << v2.horizon_s << ",\n"
     << "    \"tight_qos_slack\": " << v2_tight << ",\n"
     << "    \"prelock_structure\": "
     << util::json_bool(prelock_structure) << ",\n"
     << "    \"mixed_rung\": \""
     << (prelock_structure
             ? v2_rungs[static_cast<std::size_t>(anchor->mixed)].name
             : "none")
     << "\",\n"
     << "    \"pinned_rung\": \""
     << (prelock_structure
             ? v2_rungs[static_cast<std::size_t>(anchor->pure)].name
             : "none")
     << "\",\n"
     << "    \"thermal_cap_mhz\": " << (thermal ? thermal->cap_mhz : 0.0)
     << ",\n"
     << "    \"policies\": [\n";
  write_json(os, rp, 6);
  os << ",\n";
  write_json(os, rr, 6);
  for (const scenario::MissionReport& rs : v2_static_reports) {
    os << ",\n";
    write_json(os, rs, 6);
  }
  os << "\n    ],\n"
     << "    \"best_zero_miss_static\": \""
     << (v2_have_static ? v2_best_static : "none") << "\",\n"
     << "    \"best_zero_miss_static_uj\": " << v2_best_static_uj << ",\n"
     << "    \"predictive_total_uj\": " << rp.total_uj() << ",\n"
     << "    \"reactive_total_uj\": " << rr.total_uj() << ",\n"
     << "    \"predictive_clean\": " << util::json_bool(v2_pred_clean)
     << ",\n"
     << "    \"predictive_beats_reactive\": "
     << util::json_bool(v2_beats_reactive) << ",\n"
     << "    \"predictive_beats_best_static\": "
     << util::json_bool(v2_beats_static) << "\n"
     << "  },\n"
     << "  \"mission_v3\": {\n"
     << "    \"model\": " << util::json_quoted(v2_model.name()) << ",\n"
     << "    \"horizon_s\": " << v3.horizon_s << ",\n"
     << "    \"radio\": {\"link_kbps\": " << v3.radio.link_kbps
     << ", \"payload_bytes\": " << v3.radio.payload_bytes
     << ", \"tx_mw\": " << v3.radio.tx_mw
     << ", \"ramp_us\": " << v3.radio.ramp_us << "},\n"
     << "    \"harvest_peak_mw\": " << v3_peak_harvest_mw << ",\n"
     << "    \"charge_rate_cap_mw\": " << v3.battery.charge_rate_cap_mw
     << ",\n"
     << "    \"policies\": [\n";
  for (std::size_t i = 0; i < v3_reports.size(); ++i) {
    if (i) os << ",\n";
    write_json(os, v3_reports[i], 6);
  }
  os << "\n    ],\n"
     << "    \"pareto\": \n";
  write_pareto_json(os, pareto, 4);
  os << ",\n"
     << "    \"front\": [";
  {
    bool first_front = true;
    for (const scenario::MissionParetoPoint& p : pareto) {
      if (!p.on_front) continue;
      os << (first_front ? "" : ", ") << util::json_quoted(p.policy);
      first_front = false;
    }
  }
  os << "],\n"
     << "    \"static_policies\": " << v3_statics << ",\n"
     << "    \"predictive_harvested_mwh\": " << v3_pred.harvested_mwh
     << ",\n"
     << "    \"predictive_radio_uj\": " << v3_pred.radio_uj << ",\n"
     << "    \"predictive_on_front\": "
     << util::json_bool(predictive_on_front) << "\n"
     << "  },\n"
     << "  \"mission_v4\": {\n"
     << "    \"model\": " << util::json_quoted(v2_model.name()) << ",\n"
     << "    \"horizon_s\": " << v4.horizon_s << ",\n"
     << "    \"faults\": {\"loss_prob\": " << v4.faults.radio.loss_prob
     << ", \"max_retries\": " << v4.faults.radio.max_retries
     << ", \"backoff_base_s\": " << v4.faults.radio.backoff_base_s
     << ", \"backoff_jitter\": " << v4.faults.radio.backoff_jitter
     << ", \"outages\": " << v4.faults.radio.outages.size()
     << ", \"resets\": " << v4.faults.resets.size()
     << ", \"boot_s\": " << v4.faults.reboot.boot_s
     << ", \"boot_uj\": " << v4.faults.reboot.boot_uj
     << ", \"checkpoint_interval_s\": "
     << v4_ckpt.faults.reboot.checkpoint_interval_s
     << ", \"checkpoint_uj\": " << v4_ckpt.faults.reboot.checkpoint_uj
     << "},\n"
     << "    \"policies\": [\n";
  for (std::size_t i = 0; i < v4_reports.size(); ++i) {
    if (i) os << ",\n";
    write_json(os, v4_reports[i], 6);
  }
  os << "\n    ],\n"
     << "    \"availability_pareto\": \n";
  write_availability_pareto_json(os, v4_front, 4);
  os << ",\n"
     << "    \"ckpt_predictive_total_uj\": " << v4_warm.total_uj() << ",\n"
     << "    \"ckpt_predictive_availability\": " << v4_warm.availability()
     << ",\n"
     << "    \"cold_reactive_total_uj\": " << v4_cold_reac.total_uj()
     << ",\n"
     << "    \"cold_reactive_availability\": " << v4_cold_reac.availability()
     << ",\n"
     << "    \"faults_exercised\": " << util::json_bool(v4_exercised)
     << ",\n"
     << "    \"ckpt_predictive_on_front\": "
     << util::json_bool(v4_warm_on_front) << ",\n"
     << "    \"ckpt_predictive_dominates_cold_reactive\": "
     << util::json_bool(v4_warm_dominates) << "\n"
     << "  },\n"
     << "  \"mission_v5\": {\n"
     << "    \"model\": " << util::json_quoted(v2_model.name()) << ",\n"
     << "    \"planner_horizon_slots\": " << v5_horizon << ",\n"
     << "    \"radio_batch_frames\": " << v5_batch << ",\n"
     << "    \"planner_replans\": " << v5_replans << ",\n"
     << "    \"planner_overrides\": " << v5_overrides << ",\n"
     << "    \"policies\": [\n";
  for (std::size_t i = 0; i < v5_reports.size(); ++i) {
    if (i) os << ",\n";
    write_json(os, v5_reports[i], 6);
  }
  os << "\n    ],\n"
     << "    \"pareto\": \n";
  write_pareto_json(os, v5_front, 4);
  os << ",\n"
     << "    \"fault_policies\": [\n";
  for (std::size_t i = 0; i < v5f_reports.size(); ++i) {
    if (i) os << ",\n";
    write_json(os, v5f_reports[i], 6);
  }
  os << "\n    ],\n"
     << "    \"availability_pareto\": \n";
  write_availability_pareto_json(os, v5f_front, 4);
  os << ",\n"
     << "    \"planner_total_uj\": " << v5_plan.total_uj() << ",\n"
     << "    \"planner_mean_lateness_s\": " << v5_plan.mean_lateness_s()
     << ",\n"
     << "    \"predictive_total_uj\": " << v3_pred.total_uj() << ",\n"
     << "    \"predictive_mean_lateness_s\": " << v3_pred.mean_lateness_s()
     << ",\n"
     << "    \"planner_fault_total_uj\": " << v5f_plan.total_uj() << ",\n"
     << "    \"planner_availability\": " << v5f_plan.availability() << ",\n"
     << "    \"ckpt_predictive_total_uj\": " << v4_warm.total_uj() << ",\n"
     << "    \"ckpt_predictive_availability\": " << v4_warm.availability()
     << ",\n"
     << "    \"planner_exercised\": " << util::json_bool(v5_exercised)
     << ",\n"
     << "    \"planner_dominates_lateness\": "
     << util::json_bool(v5_dominates_lateness) << ",\n"
     << "    \"planner_dominates_availability\": "
     << util::json_bool(v5_dominates_availability) << "\n"
     << "  }\n}\n";
  os.close();
  std::cout << "-> " << out_path << "\n";

  bool ok = governor_wins && schedules_identical;
  if (!zero_resimulations) {
    std::cerr << "granularity swaps re-simulated: repair must record "
                 "exactly once on the replay path\n";
    ok = false;
  }
  if (!prelock_structure) {
    std::cerr << "v2 ladder lost its mixed rung; the pre-lock lever went "
                 "unexercised\n";
    ok = false;
  }
  if (!(v2_pred_clean && v2_beats_reactive && v2_beats_static)) {
    std::cerr << "v2 gate failed: predictive clean=" << v2_pred_clean
              << " beats_reactive=" << v2_beats_reactive
              << " beats_static=" << v2_beats_static << "\n";
    ok = false;
  }
  if (!predictive_on_front) {
    std::cerr << "harvest+radio gate failed: the predictive governor fell "
                 "off the mission Pareto front\n";
    ok = false;
  }
  if (v3_statics < 3) {
    std::cerr << "harvest+radio gate failed: only " << v3_statics
              << " static schedules landed in the Pareto plane (need >= 3 "
                 "for a meaningful front; ladder collapsed?)\n";
    ok = false;
  }
  if (!v3_exercised) {
    std::cerr << "harvest+radio gate failed: harvest or radio never engaged "
                 "(harvested " << v3_pred.harvested_mwh << " mWh, radio "
              << v3_pred.radio_uj << " uJ)\n";
    ok = false;
  }
  if (!v4_exercised) {
    std::cerr << "fault gate failed: the fault layer never engaged (resets "
              << v4_warm.resets << ", checkpoints " << v4_warm.checkpoints
              << ", retries " << v4_warm.retries << ", tx failures "
              << v4_warm.tx_failures << ")\n";
    ok = false;
  }
  if (!v4_warm_on_front) {
    std::cerr << "fault gate failed: the checkpointed predictive governor "
                 "fell off the (energy, availability) front\n";
    ok = false;
  }
  if (!v4_warm_dominates) {
    std::cerr << "fault gate failed: checkpointed predictive ("
              << v4_warm.total_uj() / 1e6 << " J, availability "
              << v4_warm.availability()
              << ") does not strictly dominate cold-boot reactive ("
              << v4_cold_reac.total_uj() / 1e6 << " J, availability "
              << v4_cold_reac.availability() << ")\n";
    ok = false;
  }
  if (!v5_exercised) {
    std::cerr << "planner gate failed: the planning layer never engaged "
                 "(replans " << v5_replans << ", radio "
              << v5_plan.radio_uj << " uJ, fault resets " << v5f_plan.resets
              << ")\n";
    ok = false;
  }
  if (!v5_dominates_lateness) {
    std::cerr << "planner gate failed: planner+batching ("
              << v5_plan.total_uj() / 1e6 << " J, mean lateness "
              << v5_plan.mean_lateness_s()
              << " s) does not dominate-or-tie the predictive governor ("
              << v3_pred.total_uj() / 1e6 << " J, mean lateness "
              << v3_pred.mean_lateness_s() << " s)\n";
    ok = false;
  }
  if (!v5_dominates_availability) {
    std::cerr << "planner gate failed: planner+batching under faults ("
              << v5f_plan.total_uj() / 1e6 << " J, availability "
              << v5f_plan.availability()
              << ") does not dominate-or-tie the checkpointed predictive "
                 "governor (" << v4_warm.total_uj() / 1e6
              << " J, availability " << v4_warm.availability() << ")\n";
    ok = false;
  }
  if (!smoke && replay.built.repair_iterations == 0) {
    std::cerr << "repair loop never engaged; speedup claim not exercised\n";
    ok = false;
  }
  if (!smoke && repair_speedup < 5.0) {
    std::cerr << "repair speedup " << repair_speedup << "x below the 5x gate\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
