// Reproduces the §II-A switching-overhead characterization (E2):
//   * reprogramming the PLL costs ~200 us (relock),
//   * muxing to the HSE — and back to a still-locked PLL — is near instant,
// and quantifies the consequence the DAE design exploits: with cheap mux
// toggles, fine-grained LFO/HFO switching becomes affordable, while per-layer
// HFO changes must amortize a relock.
#include <iomanip>
#include <iostream>

#include "sim/mcu.hpp"

using namespace daedvfs;

namespace {

const clock::ClockConfig kHfo216 = clock::ClockConfig::pll_hse(50.0, 25, 216, 2);
const clock::ClockConfig kHfo168 = clock::ClockConfig::pll_hse(50.0, 25, 168, 2);
const clock::ClockConfig kHfo108 = clock::ClockConfig::pll_hse(50.0, 50, 216, 2);
const clock::ClockConfig kLfo = clock::ClockConfig::hse_direct(50.0);

enum class PllState { kAsBooted, kLockedAt216, kStopped };

double switch_us(const clock::ClockConfig& from, const clock::ClockConfig& to,
                 PllState pll = PllState::kAsBooted) {
  sim::SimParams p;
  p.boot = kHfo216;
  sim::Mcu mcu(p);
  if (pll == PllState::kStopped) {
    mcu.rcc().switch_to(kLfo);
    mcu.rcc().stop_pll();
  }
  mcu.rcc().switch_to(from);  // position without charging simulated time
  const double t0 = mcu.time_us();
  mcu.switch_clock(to);
  return mcu.time_us() - t0;
}

}  // namespace

int main() {
  std::cout << "=== Switch-overhead matrix (paper SSII-A) ===\n";
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "  PLL(216) -> HSE(50)  [mux only]          : "
            << switch_us(kHfo216, kLfo) << " us\n";
  std::cout << "  HSE(50) -> PLL(216)  [PLL still locked]  : "
            << switch_us(kLfo, kHfo216) << " us   <- the DAE fast path\n";
  std::cout << "  PLL(216) -> PLL(168) [reprogram + relock]: "
            << switch_us(kHfo216, kHfo168)
            << " us (paper: ~200 us)\n";
  std::cout << "  PLL(216) -> PLL(108) [relock + VOS drop] : "
            << switch_us(kHfo216, kHfo108) << " us\n";
  std::cout << "  cold PLL -> PLL(216) [after clock gating]: "
            << switch_us(kLfo, kHfo216, PllState::kStopped) << " us\n\n";

  std::cout << "=== Relock amortization: why DAE toggles LFO<->HFO instead of"
               " reprogramming the PLL ===\n";
  std::cout << "(1 ms of work split into N segments, memory halves at 50 MHz)\n";
  std::cout << "  segments   mux-toggle total   relock total\n";
  for (int n : {1, 4, 16, 64, 256}) {
    sim::SimParams p;
    p.boot = kHfo216;
    sim::Mcu mux_mcu(p), relock_mcu(p);
    for (int i = 0; i < n; ++i) {
      mux_mcu.switch_clock(kLfo);
      mux_mcu.switch_clock(kHfo216);
    }
    // Reprogramming alternative: swing the PLL itself each time.
    for (int i = 0; i < n; ++i) {
      relock_mcu.switch_clock(kHfo108);
      relock_mcu.switch_clock(kHfo216);
    }
    std::cout << "  " << std::setw(8) << n << "   " << std::setw(13)
              << mux_mcu.time_us() << " us   " << std::setw(10)
              << relock_mcu.time_us() << " us\n";
  }
  std::cout << "\nConclusion: high-to-low switches should use the HSE mux "
               "(paper SSII-A); PLL reprogramming only pays off across layer "
               "boundaries.\n";
  return 0;
}
