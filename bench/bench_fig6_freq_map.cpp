// Reproduces Fig. 6 of the paper: the per-layer HFO frequency and DAE
// granularity selected by the MCKP for QoS constraints of 10% and 50%,
// plus the aggregate statistics quoted in §IV:
//   * pointwise layers run at 216 MHz far more often than depthwise (paper:
//     58.8% vs 21.4%),
//   * a large share of dw/pw layers run at the lowest frequencies (<=100 MHz,
//     paper: 46.1% / 43.4%),
//   * tight QoS pushes more layers to 216 MHz, relaxed QoS grows the share
//     of granularity-16 layers (paper: +18.6% / +22.3%).
#include <iomanip>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "graph/zoo.hpp"

using namespace daedvfs;

int main() {
  std::cout << "=== Fig. 6: per-layer frequency / granularity maps ===\n\n";

  for (const graph::Model& model : graph::zoo::make_evaluation_suite()) {
    core::PipelineConfig cfg;
    cfg.space =
        dse::make_paper_design_space(power::PowerModel{cfg.explore.sim.power});

    cfg.qos_slack = 0.10;
    core::Pipeline tight_pipe(cfg);
    const core::PipelineResult tight = tight_pipe.run(model);
    cfg.qos_slack = 0.50;
    const core::PipelineResult relaxed =
        core::Pipeline(cfg).run(model, &tight.dse);

    std::cout << "--- " << model.name()
              << " ---  (per layer: kind  f10-f50 MHz  g10-g50)\n";
    for (std::size_t k = 0; k < tight.choices.size(); ++k) {
      const auto& t = tight.choices[k].solution;
      const auto& r = relaxed.choices[k].solution;
      const auto kind = tight.dse[k].kind;
      std::cout << "  " << std::setw(3) << k << "  " << std::left
                << std::setw(10) << graph::to_string(kind) << std::right
                << "  " << std::setw(3) << std::fixed << std::setprecision(0)
                << t.hfo.sysclk_mhz() << "-" << std::setw(3)
                << r.hfo.sysclk_mhz() << "  " << std::setw(2)
                << t.granularity << "-" << std::setw(2) << r.granularity
                << "\n";
    }

    const core::FrequencyStats st10 = core::compute_frequency_stats(tight);
    const core::FrequencyStats st50 = core::compute_frequency_stats(relaxed);
    std::cout << std::setprecision(1);
    std::cout << "  stats @10%: pw@216=" << st10.pct_pointwise_at_max
              << "% dw@216=" << st10.pct_depthwise_at_max
              << "% pw<=100=" << st10.pct_pointwise_low_freq
              << "% dw<=100=" << st10.pct_depthwise_low_freq << "%\n";
    std::cout << "  stats @50%: pw@216=" << st50.pct_pointwise_at_max
              << "% dw@216=" << st50.pct_depthwise_at_max
              << "% pw<=100=" << st50.pct_pointwise_low_freq
              << "% dw<=100=" << st50.pct_depthwise_low_freq << "%\n";
    std::cout << "  layers@216: " << st10.pct_layers_at_max << "% (10%) vs "
              << st50.pct_layers_at_max
              << "% (50%)  [paper: tight QoS adds ~18.6% @216]\n";
    std::cout << "  g=16 share: " << st10.pct_dae_layers_g16 << "% (10%) vs "
              << st50.pct_dae_layers_g16
              << "% (50%)  [paper: relaxed QoS adds ~22.3% g16]\n\n";
  }
  return 0;
}
