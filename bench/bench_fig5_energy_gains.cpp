// Reproduces Fig. 5 of the paper: energy-consumption gains of DAE+DVFS and
// of TinyEngine+ClockGating over the plain TinyEngine baseline, for the
// three evaluation CNNs (VWW, PD, MBV2) under QoS constraints of 10%
// (tight), 30% (moderate) and 50% (relaxed).
//
// Also prints the §IV headline statistics (E6): maximum gain vs TinyEngine,
// maximum gain vs the clock-gated baseline, and the MBV2 energy drop between
// the 10% and 50% QoS levels.
#include <algorithm>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "graph/zoo.hpp"

using namespace daedvfs;

int main() {
  std::cout << "=== Fig. 5: energy gains over TinyEngine (iso-latency) ===\n";
  const double slacks[] = {0.10, 0.30, 0.50};

  double max_gain_te = 0.0;
  double max_gain_gated = 0.0;
  double mbv2_e10 = 0.0, mbv2_e50 = 0.0;
  double mbv2_inf10 = 0.0, mbv2_inf50 = 0.0;

  std::cout << core::csv_header() << "\n";
  for (const graph::Model& model : graph::zoo::make_evaluation_suite()) {
    // The DSE (step 2) is QoS-independent: explore once per model, reuse
    // across the three QoS levels (as the paper's methodology does).
    core::PipelineConfig cfg;
    cfg.space =
        dse::make_paper_design_space(power::PowerModel{cfg.explore.sim.power});
    std::vector<dse::LayerSolutionSet> dse_cache;

    for (double slack : slacks) {
      cfg.qos_slack = slack;
      core::Pipeline pipeline(cfg);
      const core::PipelineResult r =
          pipeline.run(model, dse_cache.empty() ? nullptr : &dse_cache);
      if (dse_cache.empty()) dse_cache = r.dse;

      std::cout << core::csv_row(r) << "\n";
      max_gain_te =
          std::max(max_gain_te, r.comparison.gain_vs_tinyengine_pct());
      max_gain_gated =
          std::max(max_gain_gated, r.comparison.gain_vs_gated_pct());
      if (model.name() == "MBV2" && slack == 0.10) {
        mbv2_e10 = r.comparison.dae_dvfs.total_uj();
        mbv2_inf10 = r.comparison.dae_dvfs.inference_uj;
      }
      if (model.name() == "MBV2" && slack == 0.50) {
        mbv2_e50 = r.comparison.dae_dvfs.total_uj();
        mbv2_inf50 = r.comparison.dae_dvfs.inference_uj;
      }
    }

    cfg.qos_slack = 0.30;
    const core::PipelineResult mid =
        core::Pipeline(cfg).run(model, &dse_cache);
    core::print_summary(std::cout, mid);
    std::cout << "\n";
  }

  std::cout << "=== headline statistics (paper §IV / E6) ===\n";
  std::cout << "  max energy gain vs TinyEngine:    " << max_gain_te
            << "% (paper: up to 25.2%)\n";
  std::cout << "  max energy gain vs clock gating:  " << max_gain_gated
            << "% (paper: up to 7.2%)\n";
  if (mbv2_e10 > 0.0) {
    std::cout << "  MBV2 energy drop, QoS 50% vs 10%: "
              << 100.0 * (mbv2_e10 - mbv2_e50) / mbv2_e10
              << "% total / "
              << 100.0 * (mbv2_inf10 - mbv2_inf50) / mbv2_inf10
              << "% inference-only (paper: 20.4%; on the LDO-fed board the\n"
                 "  window-filling idle energy masks most of the drop — see "
                 "EXPERIMENTS.md E6)\n";
  }
  return 0;
}
