// Reproduces Fig. 4 of the paper: impact of the operating frequency (left
// pair) and of the DAE granularity g (right pair) on the latency and power
// of representative depthwise and pointwise layers.
//
// Series printed:
//   latency(f), power(f)   at fixed g, f over the paper's HFO set;
//   latency(g), power(g)   at fixed f = 216 MHz, g in {0,2,4,8,12,16}.
#include <iomanip>
#include <iostream>

#include "dse/explorer.hpp"
#include "graph/zoo.hpp"

using namespace daedvfs;

namespace {

struct Probe {
  const char* label;
  int layer_idx;
};

void sweep(const graph::Model& model, const Probe& probe) {
  runtime::InferenceEngine engine(model);
  const power::PowerModel pm;
  const dse::DesignSpace space = dse::make_paper_design_space(pm);
  dse::ExploreOptions opts;

  std::cout << "--- " << probe.label << " ("
            << model.layers()[static_cast<std::size_t>(probe.layer_idx)].name
            << ", "
            << model
                   .tensor_shape(model.layers()[static_cast<std::size_t>(
                                                    probe.layer_idx)]
                                     .inputs[0])
                   .str()
            << " input) ---\n";

  std::cout << "frequency sweep (g = 8, LFO/HFO DVFS active):\n";
  std::cout << "  f(MHz)   latency(ms)   power(mW)\n";
  for (const auto& hfo : space.hfo_configs) {
    dse::LayerSolution cand;
    cand.granularity = 8;
    cand.dvfs_enabled = true;
    cand.hfo = hfo;
    const auto sol =
        dse::profile_candidate(engine, probe.layer_idx, cand, space.lfo, opts);
    std::cout << "  " << std::setw(6) << std::fixed << std::setprecision(0)
              << hfo.sysclk_mhz() << "   " << std::setw(11)
              << std::setprecision(3) << sol.t_us / 1000.0 << "   "
              << std::setw(9) << std::setprecision(1)
              << sol.energy_uj / sol.t_us * 1000.0 << "\n";
  }

  std::cout << "granularity sweep (HFO = 216 MHz):\n";
  std::cout << "  g        latency(ms)   power(mW)\n";
  for (int g : space.granularities) {
    dse::LayerSolution cand;
    cand.granularity = g;
    cand.dvfs_enabled = g > 0;
    cand.hfo = space.hfo_configs.back();  // 216 MHz
    const auto sol =
        dse::profile_candidate(engine, probe.layer_idx, cand, space.lfo, opts);
    std::cout << "  " << std::setw(2) << g << "       " << std::setw(11)
              << std::fixed << std::setprecision(3) << sol.t_us / 1000.0
              << "   " << std::setw(9) << std::setprecision(1)
              << sol.energy_uj / sol.t_us * 1000.0 << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Fig. 4: DAE granularity x clocking DSE on representative "
               "layers ===\n\n";
  const graph::Model model = graph::zoo::make_vww();

  // Pick a mid-network depthwise and pointwise layer.
  int dw_idx = -1, pw_idx = -1;
  for (int i = model.num_layers() / 3; i < model.num_layers(); ++i) {
    const auto& l = model.layers()[static_cast<std::size_t>(i)];
    if (dw_idx < 0 && l.kind == graph::LayerKind::kDepthwise) dw_idx = i;
    if (pw_idx < 0 && l.kind == graph::LayerKind::kPointwise) pw_idx = i;
    if (dw_idx >= 0 && pw_idx >= 0) break;
  }
  sweep(model, {"depthwise layer", dw_idx});
  sweep(model, {"pointwise layer", pw_idx});

  std::cout << "Expected shapes (paper Fig. 4): latency falls / power rises "
               "with f;\nlatency falls with g (buffered planes beat strided "
               "access) and power falls\nwith g (longer LFO segments, fewer "
               "switches) until the gather buffer\noutgrows the 16 KB L1 "
               "(see bench_cache_ablation).\n";
  return 0;
}
