// Ablation A2: cache behaviour vs DAE granularity — the mechanism behind the
// paper's warning that "very high buffer size can lead the cache misses to
// skyrocket". Sweeps g for depthwise layers of different plane sizes and
// reports the gather-buffer footprint, the L1 miss rate and the latency.
#include <iomanip>
#include <iostream>

#include "dse/explorer.hpp"
#include "graph/builder.hpp"

using namespace daedvfs;

namespace {

graph::Model dw_probe(int hw, int channels) {
  graph::ModelBuilder b("probe", hw, hw, channels, 1);
  b.depthwise(graph::ModelBuilder::input(), 3, 1, true);
  return b.take();
}

void sweep(int hw, int channels) {
  const graph::Model model = dw_probe(hw, channels);
  runtime::InferenceEngine engine(model);
  const power::PowerModel pm;
  const dse::DesignSpace space = dse::make_paper_design_space(pm);
  dse::ExploreOptions opts;
  opts.max_scratch_bytes = 0;  // no bound: show the knee explicitly

  std::cout << "--- depthwise " << hw << "x" << hw << "x" << channels
            << " (plane = " << hw * hw << " B, L1 = 16 KB) ---\n";
  std::cout << "  g    buffer(KB)   latency(ms)   L1 miss rate\n";
  for (int g : {0, 2, 4, 8, 12, 16, 24, 32}) {
    if (g > channels) break;
    sim::SimParams params;
    params.boot = space.hfo_configs.back();
    sim::Mcu mcu(params);
    runtime::LayerPlan plan;
    plan.granularity = g;
    plan.hfo = space.hfo_configs.back();
    plan.lfo = space.lfo;
    plan.dvfs_enabled = g > 0;
    const auto prof =
        engine.run_layer(mcu, 0, plan, kernels::ExecMode::kTiming);
    const auto& cs = mcu.cache().stats();
    std::cout << "  " << std::setw(2) << g << "   " << std::setw(9)
              << std::fixed << std::setprecision(1) << g * hw * hw / 1024.0
              << "   " << std::setw(11) << std::setprecision(3)
              << prof.t_us / 1000.0 << "   " << std::setw(11)
              << std::setprecision(4) << cs.miss_rate() << "\n";
  }
  std::cout << "\n";
}

}  // namespace

void dtcm_comparison() {
  // Extension: place the gather buffer in the F7's tightly-coupled memory
  // (uncached, single-cycle) instead of cached SRAM — the placement a real
  // TinyEngine port would use when the buffer fits the 128 KB DTCM.
  const graph::Model model = dw_probe(48, 32);
  const power::PowerModel pm;
  const dse::DesignSpace space = dse::make_paper_design_space(pm);
  std::cout << "--- scratch placement (48x48x32 depthwise, g = 8) ---\n";
  for (sim::MemRegion region :
       {sim::MemRegion::kSram, sim::MemRegion::kDtcm}) {
    runtime::InferenceEngine engine(model);
    engine.place_scratch(region);
    sim::SimParams params;
    params.boot = space.hfo_configs.back();
    sim::Mcu mcu(params);
    runtime::LayerPlan plan;
    plan.granularity = 8;
    plan.hfo = space.hfo_configs.back();
    plan.lfo = space.lfo;
    plan.dvfs_enabled = true;
    const auto prof =
        engine.run_layer(mcu, 0, plan, kernels::ExecMode::kTiming);
    std::cout << "  scratch in " << to_string(region) << ": "
              << std::fixed << std::setprecision(3) << prof.t_us / 1000.0
              << " ms, " << mcu.cache().stats().misses << " L1 misses\n";
  }
  std::cout << "\n";
}

int main() {
  std::cout << "=== A2: gather-buffer footprint vs L1 capacity ===\n\n";
  sweep(24, 32);   // small planes: large g stays cache-resident
  sweep(48, 32);   // 2.3 KB planes: g=8 ~ 18 KB -> crosses the L1
  sweep(96, 32);   // 9.2 KB planes: even g=2 thrashes
  dtcm_comparison();
  std::cout
      << "Observed mechanism in this implementation: larger g *reduces*\n"
         "misses because one gather pass serves more channels per touched\n"
         "input line, while the streamed gather buffer has unit reuse and\n"
         "never thrashes — so the paper's miss blow-up at very high g does\n"
         "not reproduce here (see EXPERIMENTS.md A2). What bounds g instead\n"
         "is the SRAM scratch footprint (buffer column above vs the ~100 KB\n"
         "budget the explorer enforces) and the flat latency tail: beyond\n"
         "g~8 the returns vanish while the buffer keeps growing.\n";
  return 0;
}
