// Ablation A1: MCKP solver study.
//   * quality: DP vs greedy vs brute force on small synthetic instances;
//   * scaling: DP runtime vs class count and tick resolution (the DP is
//     pseudo-polynomial — this is the knob the paper's "pseudo-polynomial
//     time solution" refers to);
//   * end-to-end: DP vs greedy on the real per-layer Pareto fronts of VWW.
#include <chrono>
#include <iomanip>
#include <iostream>
#include <random>

#include "dse/explorer.hpp"
#include "graph/zoo.hpp"
#include "mckp/mckp.hpp"

using namespace daedvfs;

namespace {

mckp::Instance random_instance(uint32_t seed, int classes, int items,
                               double tightness) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> w(10.0, 1000.0);
  std::uniform_real_distribution<double> v(1.0, 100.0);
  mckp::Instance inst;
  double lo = 0, hi = 0;
  for (int k = 0; k < classes; ++k) {
    std::vector<mckp::Item> cls;
    double wmin = 1e18, wmax = 0;
    for (int j = 0; j < items; ++j) {
      cls.push_back({w(rng), v(rng)});
      wmin = std::min(wmin, cls.back().weight);
      wmax = std::max(wmax, cls.back().weight);
    }
    lo += wmin;
    hi += wmax;
    inst.classes.push_back(std::move(cls));
  }
  inst.capacity = lo + tightness * (hi - lo);
  return inst;
}

template <class F>
double time_ms(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::cout << "=== A1: MCKP solver ablation ===\n\n";

  std::cout << "--- quality vs brute force (8 classes x 5 items, 20 seeds) ---\n";
  double dp_gap = 0.0, greedy_gap = 0.0;
  int n_feasible = 0;
  for (uint32_t seed = 0; seed < 20; ++seed) {
    const auto inst = random_instance(seed, 8, 5, 0.4);
    const auto bf = mckp::solve_brute_force(inst);
    if (!bf.feasible) continue;
    ++n_feasible;
    dp_gap += mckp::solve_dp(inst).total_value / bf.total_value - 1.0;
    greedy_gap += mckp::solve_greedy(inst).total_value / bf.total_value - 1.0;
  }
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "  DP mean optimality gap:     "
            << 100.0 * dp_gap / n_feasible << "%\n";
  std::cout << "  greedy mean optimality gap: "
            << 100.0 * greedy_gap / n_feasible << "%\n\n";

  std::cout << "--- DP runtime scaling (items = 8, ticks = 20000) ---\n";
  std::cout << "  classes   time(ms)\n";
  for (int classes : {16, 32, 64, 128, 256}) {
    const auto inst = random_instance(7, classes, 8, 0.4);
    mckp::Solution sol;
    const double ms = time_ms([&] { sol = mckp::solve_dp(inst); });
    std::cout << "  " << std::setw(7) << classes << "   " << std::setw(8)
              << std::setprecision(1) << ms
              << (sol.feasible ? "" : "  (infeasible)") << "\n";
  }
  std::cout << "\n--- DP runtime vs tick resolution (64 classes) ---\n";
  std::cout << "  ticks     time(ms)   value\n";
  const auto inst = random_instance(11, 64, 8, 0.4);
  for (int ticks : {1000, 5000, 20000, 80000}) {
    mckp::Solution sol;
    const double ms = time_ms([&] { sol = mckp::solve_dp(inst, ticks); });
    std::cout << "  " << std::setw(6) << ticks << "   " << std::setw(8)
              << std::setprecision(1) << ms << "   " << std::setprecision(2)
              << sol.total_value << "\n";
  }

  std::cout << "\n--- real instance: VWW per-layer Pareto fronts ---\n";
  const graph::Model model = graph::zoo::make_vww();
  const power::PowerModel pm;
  const auto sets =
      dse::explore_model(model, dse::make_paper_design_space(pm), {});
  mckp::Instance real;
  double tmin = 0.0;
  for (const auto& s : sets) {
    std::vector<mckp::Item> cls;
    double mn = 1e18;
    for (const auto& p : s.pareto) {
      cls.push_back({p.t_us, p.energy_uj});
      mn = std::min(mn, p.t_us);
    }
    tmin += mn;
    real.classes.push_back(std::move(cls));
  }
  real.capacity = tmin * 1.4;
  const auto dp = mckp::solve_dp(real);
  const auto greedy = mckp::solve_greedy(real);
  std::cout << std::setprecision(1);
  std::cout << "  capacity " << real.capacity / 1000.0 << " ms, "
            << real.classes.size() << " classes\n";
  std::cout << "  DP:     E=" << dp.total_value / 1000.0
            << " mJ  t=" << dp.total_weight / 1000.0 << " ms\n";
  std::cout << "  greedy: E=" << greedy.total_value / 1000.0
            << " mJ  t=" << greedy.total_weight / 1000.0 << " ms  (+"
            << std::setprecision(2)
            << 100.0 * (greedy.total_value / dp.total_value - 1.0)
            << "% energy vs DP)\n";
  return 0;
}
