// Kernel backend benchmark: scalar vs vectorized int8 MAC throughput per
// conv-family kernel across zoo-representative layer shapes, plus end-to-end
// Full-mode inference wall-clock — the perf-trajectory artifact for the
// backend-dispatch layer (docs/kernels.md).
//
// Self-verifying: every timed configuration re-checks that all compiled-in
// backends produce byte-identical outputs (and, end-to-end, bit-identical
// simulated totals); exits nonzero on any mismatch.
//
//   $ ./build/bench_kernels                 # full run -> BENCH_kernels.json
//   $ ./build/bench_kernels smoke out.json  # CI smoke (fewer reps)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "graph/zoo.hpp"
#include "kernels/backend.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/depthwise.hpp"
#include "kernels/fully_connected.hpp"
#include "kernels/pointwise.hpp"
#include "runtime/engine.hpp"
#include "sim/mcu.hpp"
#include "tensor/tensor.hpp"
#include "util/json_writer.hpp"

using namespace daedvfs;

namespace {

void fill(tensor::QTensor& t, uint32_t seed, int lo = -100, int hi = 100) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(lo, hi);
  for (int64_t i = 0; i < t.shape().elems(); ++i) {
    t.data()[i] = static_cast<int8_t>(d(rng));
  }
}

tensor::BiasVector make_bias(int n, uint32_t seed) {
  tensor::BiasVector b(static_cast<std::size_t>(n));
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(-500, 500);
  for (auto& v : b) v = d(rng);
  return b;
}

kernels::ConvParams params_for(int stride, int pad, double mult) {
  kernels::ConvParams p;
  p.stride = stride;
  p.pad = pad;
  p.input_zero_point = -1;
  p.output_zero_point = -1;
  p.requant = tensor::quantize_multiplier(mult);
  return p;
}

/// Best-of-batches timing: the min over `batches` batch averages, robust
/// against scheduler interference on busy (single-core CI) hosts.
double time_reps(int reps, int batches, const std::function<void()>& fn) {
  fn();  // warm-up
  double best = 1e300;
  for (int b = 0; b < batches; ++b) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best,
        std::chrono::duration<double, std::milli>(t1 - t0).count() / reps);
  }
  return best;
}

/// One benchmarked kernel configuration: a runner closure over prebuilt
/// args, the output buffer it writes, and its MAC count per run.
struct KernelCase {
  std::string kernel;
  std::string shape;
  double macs = 0.0;
  std::function<void(kernels::ExecContext&)> run;
  tensor::QTensor* output = nullptr;
};

struct BackendTiming {
  std::string name;
  double wall_ms = 0.0;
  double mmacs = 0.0;
};

struct CaseResult {
  std::string kernel;
  std::string shape;
  double macs = 0.0;
  std::vector<BackendTiming> timings;
  double speedup = 1.0;  ///< scalar / best vectorized (1.0 if no SIMD).
  bool bit_exact = true;
};

CaseResult run_case(const KernelCase& kc, bool smoke) {
  CaseResult res;
  res.kernel = kc.kernel;
  res.shape = kc.shape;
  res.macs = kc.macs;

  // Calibrate reps on the scalar backend so every backend runs the same
  // count: ~200 ms of scalar work in full mode, minimal in smoke.
  kernels::ExecContext ctx;
  ctx.backend = &kernels::scalar_backend();
  const double probe_ms = time_reps(1, 1, [&] { kc.run(ctx); });
  const double target_ms = smoke ? 10.0 : 60.0;
  const int reps = std::max(
      1, static_cast<int>(target_ms / std::max(probe_ms, 1e-3)));
  const int batches = smoke ? 3 : 5;

  std::vector<int8_t> ref_out;
  double scalar_ms = 0.0, simd_ms = 0.0;
  for (const kernels::Backend* be : kernels::available_backends()) {
    kernels::ExecContext bctx;
    bctx.backend = be;
    const double ms = time_reps(reps, batches, [&] { kc.run(bctx); });
    res.timings.push_back(
        {be->name, ms, ms > 0.0 ? kc.macs / (ms * 1e3) : 0.0});
    if (!be->vectorized) {
      scalar_ms = ms;
      ref_out.assign(kc.output->data(),
                     kc.output->data() + kc.output->size_bytes());
    } else {
      simd_ms = ms;
      res.bit_exact =
          res.bit_exact &&
          std::memcmp(ref_out.data(), kc.output->data(), ref_out.size()) == 0;
    }
  }
  if (simd_ms > 0.0 && scalar_ms > 0.0) res.speedup = scalar_ms / simd_ms;
  return res;
}

/// End-to-end Full-mode inference on a zoo model under a DAE schedule.
struct E2eResult {
  std::string model;
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  double timing_mode_ms = 0.0;  ///< Simulator-only wall-clock for context.
  double speedup = 1.0;
  bool outputs_identical = true;
  bool costs_identical = true;
};

E2eResult run_e2e(const graph::Model& model, bool smoke) {
  E2eResult res;
  res.model = model.name();
  runtime::InferenceEngine engine(model);
  runtime::Schedule sched = runtime::make_uniform_schedule(
      model, clock::ClockConfig::pll_hse(50.0, 25, 216, 2));
  for (std::size_t i = 0; i < sched.plans.size(); ++i) {
    sched.plans[i].granularity = 1 + static_cast<int>(i % 8);
  }
  std::vector<int8_t> input(
      static_cast<std::size_t>(model.input_shape().elems()));
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> d(-100, 100);
  for (auto& v : input) v = static_cast<int8_t>(d(rng));

  const int reps = smoke ? 1 : 3;
  std::vector<int8_t> ref_out;
  double ref_t = 0.0, ref_e = 0.0;
  for (const kernels::Backend* be : kernels::available_backends()) {
    engine.set_backend(be);
    runtime::InferenceResult r;
    double t_us = 0.0, e_uj = 0.0;
    const double ms = time_reps(reps, smoke ? 2 : 3, [&] {
      sim::Mcu mcu;
      r = engine.run(mcu, sched, kernels::ExecMode::kFull, input);
      t_us = r.total_us;
      e_uj = r.total_energy_uj;
    });
    if (!be->vectorized) {
      res.scalar_ms = ms;
      ref_out = r.output;
      ref_t = t_us;
      ref_e = e_uj;
    } else {
      res.simd_ms = ms;
      res.outputs_identical = res.outputs_identical && ref_out == r.output;
      res.costs_identical =
          res.costs_identical && ref_t == t_us && ref_e == e_uj;
    }
  }
  engine.set_backend(&kernels::scalar_backend());
  res.timing_mode_ms = time_reps(reps, smoke ? 2 : 3, [&] {
    sim::Mcu mcu;
    engine.run(mcu, sched, kernels::ExecMode::kTiming, input);
  });
  engine.set_backend(nullptr);
  if (res.simd_ms > 0.0) res.speedup = res.scalar_ms / res.simd_ms;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "smoke";
  const std::string out_path =
      argc > 2 ? argv[2] : (argc > 1 && !smoke ? argv[1] : "BENCH_kernels.json");

  // Zoo-representative shapes: the stem conv every model starts with, a
  // MobileNet-scale depthwise/pointwise pair (baseline and DAE forms), and
  // the classifier head.
  tensor::QTensor conv_in({1, 96, 96, 3}, {0.05, -1});
  tensor::QTensor conv_w({16, 3, 3, 3}, {0.02, 0});
  tensor::QTensor conv_out({1, 48, 48, 16}, {0.05, -1});
  fill(conv_in, 1);
  fill(conv_w, 2, -90, 90);
  tensor::BiasVector conv_b = make_bias(16, 3);
  kernels::Conv2dArgs conv_args;
  conv_args.input = {conv_in.view(), {sim::kSramBase, sim::MemRegion::kSram}};
  conv_args.weights = {conv_w.view(), {sim::kFlashBase, sim::MemRegion::kFlash}};
  conv_args.bias = conv_b.data();
  conv_args.bias_mem = {sim::kFlashBase + 0x40000, sim::MemRegion::kFlash};
  conv_args.output = {conv_out.view(),
                      {sim::kSramBase + 0x10000, sim::MemRegion::kSram}};
  conv_args.params = params_for(2, 1, 0.002);

  tensor::QTensor dw_in({1, 48, 48, 24}, {0.05, -1});
  tensor::QTensor dw_w({1, 3, 3, 24}, {0.02, 0});
  tensor::QTensor dw_out({1, 48, 48, 24}, {0.05, -1});
  fill(dw_in, 4);
  fill(dw_w, 5, -90, 90);
  tensor::BiasVector dw_b = make_bias(24, 6);
  kernels::DepthwiseArgs dw_args;
  dw_args.input = {dw_in.view(), {sim::kSramBase, sim::MemRegion::kSram}};
  dw_args.weights = {dw_w.view(), {sim::kFlashBase, sim::MemRegion::kFlash}};
  dw_args.bias = dw_b.data();
  dw_args.bias_mem = {sim::kFlashBase + 0x40000, sim::MemRegion::kFlash};
  dw_args.output = {dw_out.view(),
                    {sim::kSramBase + 0x10000, sim::MemRegion::kSram}};
  dw_args.params = params_for(1, 1, 0.004);

  tensor::QTensor pw_in({1, 24, 24, 48}, {0.05, -1});
  tensor::QTensor pw_w({96, 1, 1, 48}, {0.02, 0});
  tensor::QTensor pw_out({1, 24, 24, 96}, {0.05, -1});
  fill(pw_in, 7);
  fill(pw_w, 8, -90, 90);
  tensor::BiasVector pw_b = make_bias(96, 9);
  kernels::PointwiseArgs pw_args;
  pw_args.input = {pw_in.view(), {sim::kSramBase, sim::MemRegion::kSram}};
  pw_args.weights = {pw_w.view(), {sim::kFlashBase, sim::MemRegion::kFlash}};
  pw_args.bias = pw_b.data();
  pw_args.bias_mem = {sim::kFlashBase + 0x40000, sim::MemRegion::kFlash};
  pw_args.output = {pw_out.view(),
                    {sim::kSramBase + 0x10000, sim::MemRegion::kSram}};
  pw_args.params = params_for(1, 0, 0.002);

  tensor::QTensor fc_in({1, 1, 1, 320}, {0.05, -1});
  tensor::QTensor fc_w({10, 1, 1, 320}, {0.02, 0});
  tensor::QTensor fc_out({1, 1, 1, 10}, {0.05, -1});
  fill(fc_in, 10);
  fill(fc_w, 11, -90, 90);
  tensor::BiasVector fc_b = make_bias(10, 12);
  kernels::FullyConnectedArgs fc_args;
  fc_args.input = {fc_in.view(), {sim::kSramBase, sim::MemRegion::kSram}};
  fc_args.weights = {fc_w.view(), {sim::kFlashBase, sim::MemRegion::kFlash}};
  fc_args.bias = fc_b.data();
  fc_args.bias_mem = {sim::kFlashBase + 0x40000, sim::MemRegion::kFlash};
  fc_args.output = {fc_out.view(),
                    {sim::kSramBase + 0x10000, sim::MemRegion::kSram}};
  fc_args.params = params_for(1, 0, 0.002);

  std::vector<KernelCase> cases;
  cases.push_back({"conv2d", "96x96x3->16 k3 s2 p1",
                   48.0 * 48 * 16 * 3 * 3 * 3,
                   [&](kernels::ExecContext& c) { kernels::conv2d(conv_args, c); },
                   &conv_out});
  for (int g : {0, 8}) {
    cases.push_back({"depthwise" + std::string(g > 0 ? "_dae" : ""),
                     "48x48x24 k3 s1 p1 g=" + std::to_string(g),
                     48.0 * 48 * 24 * 3 * 3, [&, g](kernels::ExecContext& c) {
                       kernels::DepthwiseArgs a = dw_args;
                       a.granularity = g;
                       kernels::depthwise_conv(a, c);
                     },
                     &dw_out});
  }
  for (int g : {0, 16}) {
    cases.push_back({"pointwise" + std::string(g > 0 ? "_dae" : ""),
                     "24x24 48->96 g=" + std::to_string(g),
                     24.0 * 24 * 48 * 96, [&, g](kernels::ExecContext& c) {
                       kernels::PointwiseArgs a = pw_args;
                       a.granularity = g;
                       kernels::pointwise_conv(a, c);
                     },
                     &pw_out});
  }
  cases.push_back({"fully_connected", "320->10", 320.0 * 10,
                   [&](kernels::ExecContext& c) {
                     kernels::fully_connected(fc_args, c);
                   },
                   &fc_out});

  const kernels::Backend* simd = kernels::simd_backend();
  std::cout << "backends: scalar"
            << (simd != nullptr ? std::string(" + ") + simd->name
                                : std::string(" only"))
            << (smoke ? " (smoke)" : "") << "\n";

  bool all_exact = true;
  double min_speedup = -1.0;
  std::vector<CaseResult> results;
  for (const KernelCase& kc : cases) {
    CaseResult r = run_case(kc, smoke);
    all_exact = all_exact && r.bit_exact;
    if (simd != nullptr &&
        (min_speedup < 0.0 || r.speedup < min_speedup)) {
      min_speedup = r.speedup;
    }
    std::cout << "  " << r.kernel << " [" << r.shape << "]: ";
    for (const auto& t : r.timings) {
      std::cout << t.name << " " << t.wall_ms << " ms (" << t.mmacs
                << " MMAC/s)  ";
    }
    std::cout << "speedup " << r.speedup << "x"
              << (r.bit_exact ? "" : "  OUTPUT MISMATCH") << "\n";
    results.push_back(std::move(r));
  }

  const graph::Model model = graph::zoo::make_vww();
  const E2eResult e2e = run_e2e(model, smoke);
  all_exact = all_exact && e2e.outputs_identical && e2e.costs_identical;
  std::cout << "  e2e " << e2e.model << " full-mode: scalar " << e2e.scalar_ms
            << " ms, simd " << e2e.simd_ms << " ms (" << e2e.speedup
            << "x), timing-mode " << e2e.timing_mode_ms << " ms\n";

  std::ofstream os(out_path);
  os.precision(5);
  os << "{\n  \"simd_backend\": "
     << (simd != nullptr ? "\"" + std::string(simd->name) + "\"" : "null")
     << ",\n  \"smoke\": " << util::json_bool(smoke)
     << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    os << "    {\"kernel\": " << util::json_quoted(r.kernel) << ", \"shape\": " << util::json_quoted(r.shape) << ", \"macs\": " << r.macs << ",\n     ";
    for (const auto& t : r.timings) {
      os << "\"" << t.name << "_ms\": " << t.wall_ms << ", \"" << t.name
         << "_mmacs\": " << t.mmacs << ", ";
    }
    os << "\"speedup\": " << r.speedup
       << ", \"bit_exact\": " << util::json_bool(r.bit_exact) << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"conv_family_min_speedup\": "
     << (min_speedup < 0.0 ? 1.0 : min_speedup)
     << ",\n  \"e2e\": {\"model\": " << util::json_quoted(e2e.model) << ", \"mode\": \"full\", \"scalar_ms\": " << e2e.scalar_ms
     << ", \"simd_ms\": " << e2e.simd_ms
     << ", \"timing_mode_ms\": " << e2e.timing_mode_ms
     << ", \"speedup\": " << e2e.speedup << ",\n          \"outputs_identical\": "
     << util::json_bool(e2e.outputs_identical)
     << ", \"costs_identical\": " << util::json_bool(e2e.costs_identical)
     << "},\n  \"all_bit_exact\": " << util::json_bool(all_exact)
     << "\n}\n";
  os.close();

  std::cout << (all_exact ? "all backends bit-exact" : "BACKEND MISMATCH")
            << " -> " << out_path << "\n";
  return all_exact ? 0 : 1;
}
