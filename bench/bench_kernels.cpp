// Ablation A3: google-benchmark microbenchmarks of the kernel library on the
// host: numeric kernels (Full mode, no simulator), simulator-coupled runs
// (Full + Timing), and the cache simulator itself. Useful for tracking the
// cost of the simulation infrastructure over time.
#include <benchmark/benchmark.h>

#include "kernels/depthwise.hpp"
#include "kernels/pointwise.hpp"
#include "sim/mcu.hpp"
#include "tensor/tensor.hpp"

#include <random>

namespace daedvfs {
namespace {

kernels::DepthwiseArgs make_dw(tensor::QTensor& in, tensor::QTensor& w,
                               tensor::QTensor& out, int g) {
  kernels::DepthwiseArgs a;
  a.input = {in.view(), {sim::kSramBase, sim::MemRegion::kSram}};
  a.weights = {w.view(), {sim::kFlashBase, sim::MemRegion::kFlash}};
  a.output = {out.view(), {sim::kSramBase + 0x10000, sim::MemRegion::kSram}};
  a.params.stride = 1;
  a.params.pad = 1;
  a.params.requant = tensor::quantize_multiplier(0.004);
  a.granularity = g;
  return a;
}

void fill(tensor::QTensor& t, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(-90, 90);
  for (int64_t i = 0; i < t.shape().elems(); ++i) {
    t.data()[i] = static_cast<int8_t>(d(rng));
  }
}

void BM_DepthwiseHost(benchmark::State& state) {
  const int g = static_cast<int>(state.range(0));
  tensor::QTensor in({1, 48, 48, 32}, {0.05, -1});
  tensor::QTensor w({1, 3, 3, 32}, {0.02, 0});
  tensor::QTensor out({1, 48, 48, 32}, {0.05, -1});
  fill(in, 1);
  fill(w, 2);
  kernels::ExecContext ctx;  // numerics only
  auto args = make_dw(in, w, out, g);
  for (auto _ : state) {
    kernels::depthwise_conv(args, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 48 * 48 * 32 * 9);
}
BENCHMARK(BM_DepthwiseHost)->Arg(0)->Arg(4)->Arg(16);

void BM_DepthwiseSimulated(benchmark::State& state) {
  const bool full = state.range(0) != 0;
  tensor::QTensor in({1, 48, 48, 32}, {0.05, -1});
  tensor::QTensor w({1, 3, 3, 32}, {0.02, 0});
  tensor::QTensor out({1, 48, 48, 32}, {0.05, -1});
  fill(in, 1);
  fill(w, 2);
  auto args = make_dw(in, w, out, 8);
  for (auto _ : state) {
    sim::Mcu mcu(sim::SimParams{
        .boot = clock::ClockConfig::pll_hse(50.0, 25, 216, 2)});
    kernels::LfoHfoPolicy policy(clock::ClockConfig::hse_direct(50.0),
                                 clock::ClockConfig::pll_hse(50.0, 25, 216, 2));
    kernels::ExecContext ctx;
    ctx.mcu = &mcu;
    ctx.mode = full ? kernels::ExecMode::kFull : kernels::ExecMode::kTiming;
    ctx.dvfs = &policy;
    kernels::depthwise_conv(args, ctx);
    benchmark::DoNotOptimize(mcu.energy_uj());
  }
}
BENCHMARK(BM_DepthwiseSimulated)->Arg(0)->Arg(1);  // 0=Timing, 1=Full

void BM_PointwiseHost(benchmark::State& state) {
  const int g = static_cast<int>(state.range(0));
  tensor::QTensor in({1, 24, 24, 64}, {0.05, -1});
  tensor::QTensor w({128, 1, 1, 64}, {0.02, 0});
  tensor::QTensor out({1, 24, 24, 128}, {0.05, -1});
  fill(in, 1);
  fill(w, 2);
  kernels::PointwiseArgs a;
  a.input = {in.view(), {sim::kSramBase, sim::MemRegion::kSram}};
  a.weights = {w.view(), {sim::kFlashBase, sim::MemRegion::kFlash}};
  a.output = {out.view(), {sim::kSramBase + 0x10000, sim::MemRegion::kSram}};
  a.params.requant = tensor::quantize_multiplier(0.002);
  a.granularity = g;
  kernels::ExecContext ctx;
  for (auto _ : state) {
    kernels::pointwise_conv(a, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 24 * 24 * 64 * 128);
}
BENCHMARK(BM_PointwiseHost)->Arg(0)->Arg(8);

void BM_CacheSim(benchmark::State& state) {
  sim::CacheSim cache;
  uint64_t addr = sim::kSramBase;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, 256, false));
    addr += 1 << 12;
  }
  state.SetItemsProcessed(state.iterations() * 8);  // 8 lines per access
}
BENCHMARK(BM_CacheSim);

void BM_CacheSimStrided(benchmark::State& state) {
  sim::CacheSim cache;
  uint64_t addr = sim::kSramBase;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access_strided(addr, 64, 32, 1, false));
    addr += 1 << 12;
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CacheSimStrided);

}  // namespace
}  // namespace daedvfs

BENCHMARK_MAIN();
