// Reproduces Fig. 2 of the paper: power consumption of iso-frequency
// {HSE, PLLM, PLLN} configurations, measured with the same repetitive-
// addition microbenchmark the paper uses (§II-A), plus the two supporting
// observations: PLLP = 2 minimizes power, and HSI-sourced clocks cost more
// than HSE-sourced ones.
#include <iomanip>
#include <iostream>

#include "clock/clock_tree.hpp"
#include "power/power_model.hpp"
#include "sim/mcu.hpp"

using namespace daedvfs;

namespace {

/// The paper's microbenchmark: repetitive additions in a loop — pure
/// compute-bound execution on the simulated MCU.
double measured_power_mw(const clock::ClockConfig& cfg) {
  sim::SimParams params;
  params.boot = cfg;
  sim::Mcu mcu(params);
  mcu.set_tag("addition-loop");
  constexpr double kAdditions = 5e6;
  mcu.compute(kAdditions);  // 1 add = 1 cycle
  return mcu.energy_uj() / mcu.time_us() * 1000.0;
}

}  // namespace

int main() {
  std::cout << "=== Fig. 2: power of iso-frequency clock configurations ===\n";
  std::cout << "(addition-loop microbenchmark on the simulated STM32F767ZI)\n\n";

  clock::EnumerationSpace space;
  space.hse_mhz = {16.0, 25.0, 50.0};
  space.pllm = {8, 12, 25, 50};
  space.plln = {50, 75, 100, 108, 144, 150, 168, 200, 216, 300, 400, 432};
  space.pllp = {2, 4, 8};

  const power::PowerModel pm;
  std::cout << std::fixed;
  for (double target : {50.0, 100.0, 150.0, 200.0, 216.0}) {
    const auto configs = clock::enumerate_pll_configs(space, target);
    if (configs.empty()) continue;
    std::cout << "SYSCLK = " << std::setprecision(0) << target << " MHz\n";
    double best_mw = 1e18, worst_mw = 0.0;
    for (const auto& cfg : configs) {
      const double mw = measured_power_mw(cfg);
      best_mw = std::min(best_mw, mw);
      worst_mw = std::max(worst_mw, mw);
      std::cout << "  {HSE=" << std::setw(2) << std::setprecision(0)
                << cfg.pll->input_mhz << ", M=" << std::setw(2)
                << cfg.pll->pllm << ", N=" << std::setw(3) << cfg.pll->plln
                << ", P=" << cfg.pll->pllp << "}  VCO=" << std::setw(3)
                << cfg.pll->vco_mhz() << " MHz  ->  " << std::setw(6)
                << std::setprecision(1) << mw << " mW\n";
    }
    std::cout << "  iso-frequency power spread: " << std::setprecision(1)
              << 100.0 * (worst_mw - best_mw) / worst_mw
              << "% (paper reports spreads up to ~50%)\n\n";
  }

  std::cout << "--- PLLP divider observation (paper: pick PLLP=2) ---\n";
  const auto p2 = clock::ClockConfig::pll_hse(50.0, 25, 100, 2);   // VCO 200
  const auto p4 = clock::ClockConfig::pll_hse(50.0, 25, 200, 4);   // VCO 400
  std::cout << "  100 MHz via PLLP=2 (VCO 200): " << std::setprecision(1)
            << measured_power_mw(p2) << " mW\n";
  std::cout << "  100 MHz via PLLP=4 (VCO 400): " << measured_power_mw(p4)
            << " mW   <- higher VCO, more power\n\n";

  std::cout << "--- HSI vs HSE input (paper: HSI costs more, drifts) ---\n";
  const auto hse_in = clock::ClockConfig::pll_hse(16.0, 8, 100, 2);
  const auto hsi_in = clock::ClockConfig::pll_hsi(8, 100, 2);
  std::cout << "  100 MHz from HSE-16: " << measured_power_mw(hse_in)
            << " mW\n";
  std::cout << "  100 MHz from HSI-16: " << measured_power_mw(hsi_in)
            << " mW\n\n";

  std::cout << "--- min-power tuple per target (used by the DSE) ---\n";
  for (double target : {50.0, 100.0, 150.0, 200.0, 216.0}) {
    const auto best = clock::min_power_config(
        space, target, [&](const clock::ClockConfig& c) {
          return pm.config_power_mw(c);
        });
    if (best) {
      std::cout << "  " << std::setw(3) << std::setprecision(0) << target
                << " MHz -> " << best->str() << "\n";
    }
  }
  return 0;
}
