// Ablation A4: which ingredient buys what. Evaluates, on VWW at a 30% QoS
// window, the iso-latency energy of:
//   1. TinyEngine @216 (busy idle)            — the paper's baseline;
//   2. TinyEngine + clock gating              — baseline #2;
//   3. DAE only (g=8 @216, no DVFS toggling)  — kernel restructuring alone;
//   4. DVFS only (per-layer f via MCKP, g=0)  — frequency selection alone;
//   5. full DAE+DVFS                          — the paper's methodology;
//   6. full DAE+DVFS on an SMPS-fed core      — voltage_exponent = 2 (what
//      the methodology would buy with a switching regulator).
#include <iomanip>
#include <iostream>

#include "core/pipeline.hpp"
#include "graph/zoo.hpp"

using namespace daedvfs;

namespace {

void report(const char* label, double uj, double base_uj) {
  std::cout << "  " << std::left << std::setw(34) << label << std::right
            << std::fixed << std::setprecision(2) << std::setw(8)
            << uj / 1000.0 << " mJ   " << std::showpos
            << std::setprecision(1) << 100.0 * (base_uj - uj) / base_uj
            << "% vs TinyEngine\n"
            << std::noshowpos;
}

}  // namespace

int main() {
  std::cout << "=== A4: policy ablation (VWW, QoS +30%) ===\n\n";
  const graph::Model model = graph::zoo::make_vww();

  core::PipelineConfig cfg;
  cfg.qos_slack = 0.30;
  cfg.space =
      dse::make_paper_design_space(power::PowerModel{cfg.explore.sim.power});

  const core::PipelineResult full = core::Pipeline(cfg).run(model);
  const double qos = full.qos_us;
  const double te_uj = full.comparison.tinyengine.total_uj();

  runtime::InferenceEngine engine(model);
  auto run_case = [&](const runtime::Schedule& s, bool gated) {
    sim::SimParams params = cfg.explore.sim;
    params.boot = s.plans.front().hfo;
    sim::Mcu mcu(params);
    return runtime::run_iso_latency(engine, mcu, s, qos, gated,
                                    kernels::ExecMode::kTiming)
        .total_uj();
  };

  // 3. DAE restructuring alone: uniform 216 MHz, g=8, no clock toggling.
  runtime::Schedule dae_only = runtime::make_tinyengine_schedule(model);
  for (auto& plan : dae_only.plans) plan.granularity = 8;

  // 4. DVFS alone: restrict the design space to g=0 and re-run the pipeline.
  core::PipelineConfig dvfs_cfg = cfg;
  dvfs_cfg.space.granularities = {0};
  const core::PipelineResult dvfs_only =
      core::Pipeline(dvfs_cfg).run(model);

  // 6. SMPS-fed core: same methodology, quadratic voltage term.
  core::PipelineConfig smps_cfg = cfg;
  smps_cfg.explore.sim.power.voltage_exponent = 2.0;
  smps_cfg.space = dse::make_paper_design_space(
      power::PowerModel{smps_cfg.explore.sim.power});
  const core::PipelineResult smps = core::Pipeline(smps_cfg).run(model);
  const double smps_te = smps.comparison.tinyengine.total_uj();

  report("1. TinyEngine @216 (busy idle)", te_uj, te_uj);
  report("2. TinyEngine + clock gating",
         full.comparison.tinyengine_gated.total_uj(), te_uj);
  report("3. DAE only (g=8 @216, gated idle)",
         run_case(dae_only, /*gated=*/true), te_uj);
  report("4. DVFS only (g=0, MCKP)",
         dvfs_only.comparison.dae_dvfs.total_uj(), te_uj);
  report("5. DAE+DVFS (paper methodology)",
         full.comparison.dae_dvfs.total_uj(), te_uj);
  std::cout << "\n  -- same methodology, SMPS-fed core (V^2 rail) --\n";
  report("6. DAE+DVFS, voltage_exponent=2",
         smps.comparison.dae_dvfs.total_uj(), smps_te);

  std::cout << "\nReading: DAE and DVFS each contribute; combined they beat "
               "clock gating.\nOn an LDO-fed MCU (the STM32F767 Nucleo) the "
               "voltage term is linear, which\nbounds DVFS gains — an SMPS "
               "rail (case 6) would roughly double them.\n";
  return 0;
}
