// Schedule-serving benchmark: a ScheduleServer built from a real governor
// ladder (make_server) answering a seeded stream of device states, point
// and batch. Emits BENCH_serve.json with the gates the PR's acceptance
// criteria pin:
//
//   * cached_identical      — answers served from the cache are
//                             byte-identical (answer_json) to fresh
//                             resolves of the same state;
//   * batch_thread_invariant — the batch reply stream is byte-identical
//                             across 0/1/8-worker pools (preassigned reply
//                             slots + per-call parallel_for tracking);
//   * eviction_bounded      — a capacity-bounded server never exceeds its
//                             configured cache bound and actually evicts;
//   * cache_effective       — the seeded stream's hit rate clears a floor
//                             (the stream revisits quantized cells);
//   * dp_block_ok           — strip-blocking the MCKP DP inner loop is at
//                             least break-even (full mode; smoke uses a
//                             noise floor — scripts/check_bench_gates.py
//                             re-derives the requirement from the mode);
//   * metrics_match_stats   — serve.* counters published by answer_batch
//                             agree with the server's own stats deltas.
//
//   $ ./build/bench_serve                   # full, BENCH_serve.json
//   $ ./build/bench_serve smoke out.json    # CI-sized
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "dse/design_space.hpp"
#include "governor/governor.hpp"
#include "graph/zoo.hpp"
#include "mckp/mckp.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "power/power_model.hpp"
#include "serve/schedule_server.hpp"
#include "util/json_writer.hpp"
#include "util/thread_pool.hpp"

using namespace daedvfs;

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Seeded query stream: the whole fleet's state space — slacks beyond the
/// grid, winter-to-summer ambients, draining batteries, congested uplinks.
std::vector<serve::DeviceState> make_queries(std::size_t n) {
  std::mt19937 rng(0x5e47e001u);
  std::uniform_real_distribution<double> slack(-0.05, 0.6);
  std::uniform_real_distribution<double> temp(-25.0, 65.0);
  std::uniform_real_distribution<double> soc(0.0, 1.0);
  std::uniform_int_distribution<std::uint32_t> backlog(0, 12);
  std::uniform_real_distribution<double> window(-0.002, 0.01);
  std::vector<serve::DeviceState> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    serve::DeviceState s;
    s.qos_slack = slack(rng);
    s.ambient_c = temp(rng);
    s.soc = soc(rng);
    s.backlog = backlog(rng);
    s.window_remaining_s = window(rng);
    queries.push_back(s);
  }
  return queries;
}

serve::ServerConfig serve_config() {
  serve::ServerConfig cfg;
  cfg.derate = {40.0, 2.0, 216.0};
  cfg.degraded.critical_soc = 0.3;
  cfg.degraded.max_skip = 3;
  return cfg;
}

std::string batch_stream(serve::ScheduleServer& server,
                         const std::vector<serve::DeviceState>& queries,
                         int workers) {
  util::ThreadPool pool(workers);
  const std::vector<serve::ScheduleAnswer> replies =
      server.answer_batch(queries, pool, 64);
  std::ostringstream os;
  serve::write_answers_json(os, replies);
  return os.str();
}

/// Large synthetic MCKP instance for the strip-blocking A/B: wide DP
/// (width * ~18 bytes far beyond L2) where the flat inner loop streams the
/// dp/next/parent rows once per item while the blocked loop keeps each
/// strip cache-resident across a whole class.
mckp::Instance dp_bench_instance(int classes, int items) {
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> w(10.0, 900.0);
  std::uniform_real_distribution<double> v(1.0, 100.0);
  mckp::Instance inst;
  double min_total = 0.0;
  for (int k = 0; k < classes; ++k) {
    std::vector<mckp::Item> cls;
    double wmin = 1e18;
    for (int j = 0; j < items; ++j) {
      cls.push_back({w(rng), v(rng)});
      wmin = std::min(wmin, cls.back().weight);
    }
    min_total += wmin;
    inst.classes.push_back(std::move(cls));
  }
  inst.capacity = min_total * 4.0;
  return inst;
}

double best_sweep_ms(const mckp::Instance& inst, int ticks, int reps,
                     double* checksum) {
  mckp::DpWorkspace ws;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<mckp::Solution> sols =
        mckp::solve_dp_sweep(inst, {inst.capacity}, ticks, ws);
    best = std::min(best, wall_ms_since(t0));
    *checksum = sols[0].feasible ? sols[0].total_value : -1.0;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "full";
  const bool smoke = mode == "smoke";
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_serve.json";

  // ---- Ladder: one real governor build; the server copies its rungs and
  // the retained per-layer MCKP instance (the exact-answer sidecar).
  const graph::Model model = graph::zoo::make_person_detection();
  governor::GovernorConfig gov_cfg;
  gov_cfg.pipeline.space = dse::make_paper_design_space(
      power::PowerModel{gov_cfg.pipeline.explore.sim.power});
  const auto t_ladder = std::chrono::steady_clock::now();
  const governor::ScheduleGovernor governor(model, gov_cfg);
  const double ladder_ms = wall_ms_since(t_ladder);

  const serve::ServerConfig cfg = serve_config();
  std::unique_ptr<serve::ScheduleServer> server =
      serve::make_server(governor, cfg);

  const std::size_t n_queries = smoke ? 5000 : 100000;
  const std::vector<serve::DeviceState> queries = make_queries(n_queries);

  // ---- Point-query throughput: cold pass populates the cache, warm pass
  // measures the steady serving state.
  std::cout << "serve " << n_queries << " point queries (cold)...\n";
  const auto t_cold = std::chrono::steady_clock::now();
  for (const serve::DeviceState& q : queries) (void)server->answer(q);
  const double cold_ms = wall_ms_since(t_cold);
  const auto t_warm = std::chrono::steady_clock::now();
  for (const serve::DeviceState& q : queries) (void)server->answer(q);
  const double warm_ms = wall_ms_since(t_warm);
  const serve::ScheduleServer::Stats point_stats = server->stats();

  // ---- Identity gate: cached answers byte-equal fresh resolves.
  bool cached_identical = true;
  const std::size_t stride = std::max<std::size_t>(1, n_queries / 1000);
  for (std::size_t i = 0; i < n_queries; i += stride) {
    if (serve::answer_json(server->answer(queries[i])) !=
        serve::answer_json(server->answer_fresh(queries[i]))) {
      cached_identical = false;
      break;
    }
  }

  // ---- Batch fan-out: byte-identical reply stream for 0/1/8 workers
  // (fresh server per run — cache history must not matter either), plus
  // throughput at 8 workers on the warmed main server.
  std::cout << "serve batch invariance (0/1/8 workers)...\n";
  const std::string stream0 =
      batch_stream(*serve::make_server(governor, cfg), queries, 0);
  const std::string stream1 =
      batch_stream(*serve::make_server(governor, cfg), queries, 1);
  const std::string stream8 =
      batch_stream(*serve::make_server(governor, cfg), queries, 8);
  const bool batch_thread_invariant = stream0 == stream1 && stream1 == stream8;

  util::ThreadPool pool8(8);
  const auto t_batch = std::chrono::steady_clock::now();
  const std::vector<serve::ScheduleAnswer> batch_replies =
      server->answer_batch(queries, pool8, 64);
  const double batch_ms = wall_ms_since(t_batch);
  const bool batch_complete = batch_replies.size() == queries.size();

  // ---- Eviction bound: a deliberately small cache must stay within its
  // configured capacity while still serving correct (fresh-identical)
  // answers.
  serve::ServerConfig small_cfg = cfg;
  small_cfg.cache_capacity = 256;
  std::unique_ptr<serve::ScheduleServer> bounded =
      serve::make_server(governor, small_cfg);
  for (const serve::DeviceState& q : queries) (void)bounded->answer(q);
  const bool eviction_bounded =
      bounded->cache_size() <= small_cfg.cache_capacity &&
      bounded->stats().evictions > 0;

  // ---- DP strip-blocking A/B on a wide synthetic instance: flat loop
  // (one strip spanning the whole row) vs the default block size.
  std::cout << "mckp strip-blocking A/B...\n";
  const int dp_classes = smoke ? 8 : 16;
  const int dp_items = smoke ? 16 : 32;
  const int dp_ticks = smoke ? 65536 : 262144;
  const int dp_reps = smoke ? 2 : 3;
  const mckp::Instance dp_inst = dp_bench_instance(dp_classes, dp_items);
  const int restore_block = mckp::dp_block_cells();
  double flat_value = 0.0, blocked_value = 0.0;
  mckp::set_dp_block_cells(1 << 30);  // one flat strip
  const double flat_ms = best_sweep_ms(dp_inst, dp_ticks, dp_reps, &flat_value);
  mckp::set_dp_block_cells(mckp::kDefaultDpBlockCells);
  const double blocked_ms =
      best_sweep_ms(dp_inst, dp_ticks, dp_reps, &blocked_value);
  mckp::set_dp_block_cells(restore_block);
  const double dp_block_speedup = blocked_ms > 0.0 ? flat_ms / blocked_ms : 0.0;
  // Full mode: blocking must be at least break-even on a wide DP. Smoke
  // instances are small enough that timer noise dominates — a floor only.
  const double dp_block_required = smoke ? 0.5 : 1.0;
  const bool dp_block_ok = dp_block_speedup >= dp_block_required;
  const bool dp_block_identical = flat_value == blocked_value;

  // ---- serve.* observability: counters published by a sink-carrying
  // batch agree with the server's own stats delta.
  obs::MetricsRegistry metrics;
  obs::Sink sink;
  sink.metrics = &metrics;
  std::unique_ptr<serve::ScheduleServer> observed =
      serve::make_server(governor, cfg);
  const serve::ScheduleServer::Stats before = observed->stats();
  (void)observed->answer_batch(queries, pool8, 64, &sink);
  const serve::ScheduleServer::Stats after = observed->stats();
  const bool metrics_match_stats =
      metrics.counter("serve.queries").value() == after.queries - before.queries &&
      metrics.counter("serve.cache_hits").value() == after.hits - before.hits &&
      metrics.counter("serve.cache_misses").value() ==
          after.misses - before.misses &&
      metrics.counter("serve.dp_solves").value() ==
          after.dp_solves - before.dp_solves &&
      metrics.gauge("serve.cache_entries").value() ==
          static_cast<double>(observed->cache_size());

  // The seeded stream revisits quantized cells heavily; steady-state
  // serving must be mostly hits.
  const bool cache_effective = point_stats.hit_rate() >= 0.5;

  const auto qps = [&](double ms) {
    return ms > 0.0 ? static_cast<double>(n_queries) / (ms * 1e-3) : 0.0;
  };

  std::ofstream os(out_path);
  os.precision(6);
  os << "{\n"
     << "  \"smoke\": " << util::json_bool(smoke) << ",\n"
     << "  \"model\": " << util::json_quoted(model.name()) << ",\n"
     << "  \"rungs\": " << server->rungs().size() << ",\n"
     << "  \"n_queries\": " << n_queries << ",\n"
     << "  \"shards\": " << cfg.shards << ",\n"
     << "  \"cache_capacity\": " << cfg.cache_capacity << ",\n"
     << "  \"ladder_ms\": " << ladder_ms << ",\n"
     << "  \"point_cold\": {\n"
     << "    \"wall_ms\": " << cold_ms << ",\n"
     << "    \"queries_per_sec\": " << qps(cold_ms) << "\n"
     << "  },\n"
     << "  \"point_warm\": {\n"
     << "    \"wall_ms\": " << warm_ms << ",\n"
     << "    \"queries_per_sec\": " << qps(warm_ms) << "\n"
     << "  },\n"
     << "  \"batch8\": {\n"
     << "    \"wall_ms\": " << batch_ms << ",\n"
     << "    \"queries_per_sec\": " << qps(batch_ms) << "\n"
     << "  },\n"
     << "  \"hit_rate\": " << point_stats.hit_rate() << ",\n"
     << "  \"cache_entries\": " << server->cache_size() << ",\n"
     << "  \"dp_solves\": " << point_stats.dp_solves << ",\n"
     << "  \"dp_block\": {\n"
     << "    \"classes\": " << dp_classes << ",\n"
     << "    \"items_per_class\": " << dp_items << ",\n"
     << "    \"ticks\": " << dp_ticks << ",\n"
     << "    \"block_cells\": " << mckp::kDefaultDpBlockCells << ",\n"
     << "    \"flat_ms\": " << flat_ms << ",\n"
     << "    \"blocked_ms\": " << blocked_ms << "\n"
     << "  },\n"
     << "  \"dp_block_speedup\": " << dp_block_speedup << ",\n"
     << "  \"dp_block_required\": " << dp_block_required << ",\n"
     << "  \"cached_identical\": " << util::json_bool(cached_identical)
     << ",\n"
     << "  \"batch_thread_invariant\": "
     << util::json_bool(batch_thread_invariant) << ",\n"
     << "  \"batch_complete\": " << util::json_bool(batch_complete) << ",\n"
     << "  \"eviction_bounded\": " << util::json_bool(eviction_bounded)
     << ",\n"
     << "  \"cache_effective\": " << util::json_bool(cache_effective) << ",\n"
     << "  \"dp_block_ok\": " << util::json_bool(dp_block_ok) << ",\n"
     << "  \"dp_block_identical\": " << util::json_bool(dp_block_identical)
     << ",\n"
     << "  \"metrics_match_stats\": " << util::json_bool(metrics_match_stats)
     << "\n}\n";
  os.close();

  const bool ok = cached_identical && batch_thread_invariant &&
                  batch_complete && eviction_bounded && cache_effective &&
                  dp_block_ok && dp_block_identical && metrics_match_stats;
  std::cout << "point warm: " << qps(warm_ms) / 1e6 << " Mq/s, batch8: "
            << qps(batch_ms) / 1e6 << " Mq/s, hit rate "
            << point_stats.hit_rate() << "\n"
            << "dp blocking: " << flat_ms << " ms flat vs " << blocked_ms
            << " ms blocked (" << dp_block_speedup << "x, required "
            << dp_block_required << ") -> " << out_path << "\n";
  return ok ? 0 : 1;
}
