// Fleet-simulation throughput benchmark: thousands of per-node mission
// variants through the SoA MissionBatch engine + thread-pool fan-out
// (scenario/fleet.hpp) vs the pre-fleet serial loop-over-simulate_mission,
// on ladders built once per device class over one shared ProfileCache.
// Emits BENCH_fleet.json with the gates the PR's acceptance criteria pin:
//
//   * speedup_ok        — fleet fan-out at 8 threads vs the serial loop.
//                         The required factor is hardware-scaled (4x when
//                         >= 8 cores are available, a no-regression floor
//                         when fewer — CI re-derives the formula from the
//                         recorded core count, scripts/check_bench_gates.py);
//   * soa_no_regression — one fleet thread vs the serial loop: the SoA
//                         batch engine may not cost more than 25% overhead
//                         per mission (it is the same loop, laid out flat);
//   * thread_invariant  — FleetReport JSON byte-equal for 1 vs 8 threads;
//   * ladder_cache_reused — the second class's ladder build hits the shared
//                         profile cache (build once, read everywhere);
//   * survival_monotone / availability_bounds_ok — aggregate sanity;
//   * metrics_match_stats — fleet.* counters agree with the FleetReport.
//
//   $ ./build/bench_fleet                      # full, BENCH_fleet.json
//   $ ./build/bench_fleet smoke out.json       # CI-sized
//   $ ./build/bench_fleet dump 8 fleet8.json   # FleetReport only (CI cmp)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dse/design_space.hpp"
#include "dse/profile_cache.hpp"
#include "power/power_model.hpp"
#include "graph/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "scenario/fleet.hpp"
#include "util/json_writer.hpp"

using namespace daedvfs;

namespace {

/// Two-class "survive the winter" fleet: a sensing class on a small aged
/// battery and a relay class on a bigger one with a busier duty cycle, both
/// with spread panels, noisy links and occasional brownouts — every
/// variation knob and fault path exercised.
scenario::FleetSpec make_fleet(const scenario::SchedulePolicy& policy,
                               double t_base_us, std::uint32_t nodes,
                               double horizon_s) {
  scenario::MissionSpec base;
  base.name = "winter";
  base.horizon_s = horizon_s;
  base.duty.period_s = 5.0;
  base.duty.sleep_mw = 0.9;
  base.battery.capacity_mwh = 16.0;
  base.base_qos_slack = 0.35;
  base.qos_events = {{horizon_s * 0.2, 0.05},
                     {horizon_s * 0.5, 0.6},
                     {horizon_s * 0.75, 0.15}};
  base.period_jitter = 0.05;
  base.connectivity = {{0.0, horizon_s * 0.25},
                       {horizon_s * 0.4, horizon_s * 0.3},
                       {horizon_s * 0.85, horizon_s * 0.15}};
  base.uplink_queue_frames = 48;
  base.base_harvest_mw = 0.8;
  base.harvest_events = {{horizon_s * 0.3, 3.5}, {horizon_s * 0.7, 0.3}};
  base.radio.link_kbps = 250.0;
  base.radio.payload_bytes = 512.0;
  base.faults.radio.loss_prob = 0.04;
  base.faults.radio.max_retries = 2;
  base.faults.resets = {{horizon_s * 0.55}};
  base.faults.reboot.boot_s = 4.0;
  base.faults.reboot.boot_uj = 1200.0;

  scenario::NodeVariation vary;
  vary.battery_age = 0.5;
  vary.harvest_scale = 0.6;
  vary.link_quality = 0.3;
  vary.ambient_offset_c = 10.0;

  scenario::FleetSpec fleet;
  fleet.name = "winter-fleet";
  fleet.seed = 0xf1ee70001ULL;
  scenario::DeviceClass sensing;
  sensing.name = "sensing";
  sensing.nodes = nodes - nodes / 3;
  sensing.base = base;
  sensing.variation = vary;
  sensing.policy = &policy;
  sensing.t_base_us = t_base_us;
  fleet.classes.push_back(sensing);

  scenario::DeviceClass relay = sensing;
  relay.name = "relay";
  relay.nodes = nodes / 3;
  relay.base.name = "relay";
  relay.base.duty.period_s = 3.0;
  relay.base.battery.capacity_mwh = 30.0;
  fleet.classes.push_back(relay);
  return fleet;
}

std::string fleet_json(const scenario::FleetReport& r) {
  std::ostringstream os;
  os.precision(17);  // shortest-round-trip is not needed; byte-stable is
  scenario::write_fleet_json(os, r);
  return os.str();
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Hardware-scaled speedup requirement (mirrored by
/// scripts/check_bench_gates.py): the full 4x gate applies when the machine
/// actually has >= 8 cores to scale onto; below that the bench still runs
/// everywhere and gates an honest per-core expectation with a
/// no-regression floor (8 threads on 1 core must not collapse).
double required_speedup(int effective_threads) {
  if (effective_threads >= 8) return 4.0;
  return std::max(0.85, 0.45 * static_cast<double>(effective_threads));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "full";
  const bool smoke = mode == "smoke";
  const bool dump = mode == "dump";
  const int dump_threads = dump && argc > 2 ? std::atoi(argv[2]) : 1;
  const std::string out_path =
      dump ? (argc > 3 ? argv[3] : "FLEET_dump.json")
           : (argc > 2 ? argv[2] : "BENCH_fleet.json");

  // ---- Per-class ladders, built once over one shared profile cache. Both
  // postures explore the same model at the same slacks, so the second build
  // should be served almost entirely from the first's profiles.
  const graph::Model model = graph::zoo::make_person_detection();
  governor::GovernorConfig reactive_cfg;
  reactive_cfg.pipeline.space = dse::make_paper_design_space(
      power::PowerModel{reactive_cfg.pipeline.explore.sim.power});
  governor::GovernorConfig predictive_cfg = reactive_cfg;
  predictive_cfg.predictive = true;
  dse::ProfileCache cache;
  obs::MetricsRegistry metrics;
  obs::Sink sink;
  sink.metrics = &metrics;
  const auto t_ladders = std::chrono::steady_clock::now();
  const scenario::FleetLadders ladders = scenario::build_fleet_ladders(
      {{"reactive", &model, reactive_cfg}, {"predictive", &model, predictive_cfg}},
      cache, &sink);
  const double ladders_ms = wall_ms_since(t_ladders);
  const governor::ScheduleGovernor& reactive = *ladders.governors[0];
  const governor::ScheduleGovernor& predictive = *ladders.governors[1];
  const bool ladder_cache_reused = ladders.cache_hit_rate[1] >= 0.9;

  const std::uint32_t nodes = smoke || dump ? 192 : 1536;
  const double horizon_s = smoke || dump ? 7200.0 : 43200.0;
  const scenario::FleetSpec fleet =
      make_fleet(reactive, reactive.t_base_us(), nodes, horizon_s);

  if (dump) {
    scenario::FleetOptions opts;
    opts.threads = std::max(dump_threads, 1);
    std::ofstream os(out_path);
    scenario::write_fleet_json(os, simulate_fleet(fleet, opts));
    os << "\n";
    std::cout << "fleet dump (" << opts.threads << " threads) -> " << out_path
              << "\n";
    return 0;
  }

  // ---- Serial baseline: the pre-fleet caller's loop — derive each node's
  // spec, simulate_mission it, done. Same missions, no batching, no pool.
  std::cout << "fleet " << fleet.total_nodes() << " nodes, serial baseline...\n";
  const auto t_serial = std::chrono::steady_clock::now();
  std::vector<scenario::MissionReport> serial_reports;
  serial_reports.reserve(fleet.total_nodes());
  {
    std::uint64_t node_id = 0;
    for (std::size_t c = 0; c < fleet.classes.size(); ++c) {
      const scenario::DeviceClass& dc = fleet.classes[c];
      for (std::uint32_t k = 0; k < dc.nodes; ++k, ++node_id) {
        const scenario::MissionSpec spec =
            scenario::derive_node_spec(fleet, c, node_id);
        serial_reports.push_back(
            scenario::simulate_mission(spec, *dc.policy, dc.t_base_us, dc.sim));
      }
    }
  }
  const double serial_ms = wall_ms_since(t_serial);

  // ---- Fleet fan-out at 1 and 8 threads. The 8-thread run carries the
  // obs sink (fleet.* counters gated against the report below).
  std::cout << "fleet fan-out, 1 thread...\n";
  scenario::FleetOptions opts1;
  opts1.threads = 1;
  const auto t_fleet1 = std::chrono::steady_clock::now();
  const scenario::FleetReport report1 = simulate_fleet(fleet, opts1);
  const double fleet1_ms = wall_ms_since(t_fleet1);

  std::cout << "fleet fan-out, 8 threads...\n";
  scenario::FleetOptions opts8;
  opts8.threads = 8;
  opts8.sink = &sink;
  const auto t_fleet8 = std::chrono::steady_clock::now();
  const scenario::FleetReport report8 = simulate_fleet(fleet, opts8);
  const double fleet8_ms = wall_ms_since(t_fleet8);

  // ---- Gates.
  const std::string json1 = fleet_json(report1);
  const bool thread_invariant = json1 == fleet_json(report8);

  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware = hw > 0 ? static_cast<int>(hw) : 1;
  const int effective_threads = std::min(8, hardware);
  const double speedup = fleet8_ms > 0.0 ? serial_ms / fleet8_ms : 0.0;
  const double required = required_speedup(effective_threads);
  const bool speedup_ok = speedup >= required;

  // SoA no-regression: the 1-thread fleet runs the same missions through
  // the batched engine; per-mission cost may not regress past 25% (it is
  // usually *faster*: flat state, shared arenas, no per-mission deque).
  const double soa_ratio = serial_ms > 0.0 ? fleet1_ms / serial_ms : 0.0;
  const bool soa_no_regression = soa_ratio <= 1.25;

  bool survival_monotone = !report8.survival.empty();
  std::uint64_t prev_alive = report8.nodes;
  for (const scenario::FleetSurvivalPoint& p : report8.survival) {
    if (p.alive > prev_alive) survival_monotone = false;
    prev_alive = p.alive;
  }
  const bool availability_bounds_ok =
      report8.availability.min >= 0.0 && report8.availability.max <= 1.0 &&
      report8.fleet_availability() >= 0.0 &&
      report8.fleet_availability() <= 1.0;

  // Per-node reports from the serial loop and the fleet agree — aggregate
  // cross-check without re-serializing every node: totals must match.
  double serial_energy = 0.0;
  std::uint64_t serial_frames = 0, serial_depleted = 0;
  for (const scenario::MissionReport& r : serial_reports) {
    serial_energy += r.total_uj();
    serial_frames += r.frames;
    serial_depleted += r.battery_depleted ? 1 : 0;
  }
  const bool serial_fleet_agree =
      serial_frames == report8.frames && serial_depleted == report8.depleted &&
      serial_energy == report8.total_energy_uj;

  // ---- Posture front: same fleet, predictive ladder.
  const scenario::FleetSpec fleet_pred =
      make_fleet(predictive, predictive.t_base_us(), nodes, horizon_s);
  scenario::FleetOptions opts_pred;
  opts_pred.threads = 8;
  const scenario::FleetReport report_pred = simulate_fleet(fleet_pred, opts_pred);
  const std::vector<scenario::FleetParetoPoint> front =
      scenario::fleet_pareto({report8, report_pred});
  bool front_nonempty = false;
  for (const scenario::FleetParetoPoint& p : front) {
    front_nonempty = front_nonempty || p.on_front;
  }

  const auto counter_is = [&](const char* name, std::uint64_t want) {
    return metrics.counter(name).value() == want;
  };
  const bool metrics_ok =
      counter_is("fleet.nodes", report8.nodes) &&
      counter_is("fleet.depleted", report8.depleted) &&
      counter_is("fleet.frames", report8.frames) &&
      counter_is("fleet.frames_offered", report8.frames_offered) &&
      counter_is("fleet.deadline_misses", report8.deadline_misses);

  const auto missions_per_sec = [&](double ms) {
    return ms > 0.0 ? static_cast<double>(fleet.total_nodes()) / (ms * 1e-3)
                    : 0.0;
  };

  std::ofstream os(out_path);
  os.precision(6);
  os << "{\n"
     << "  \"smoke\": " << util::json_bool(smoke) << ",\n"
     << "  \"model\": " << util::json_quoted(model.name()) << ",\n"
     << "  \"nodes\": " << fleet.total_nodes() << ",\n"
     << "  \"classes\": " << fleet.classes.size() << ",\n"
     << "  \"horizon_s\": " << horizon_s << ",\n"
     << "  \"hardware_concurrency\": " << hardware << ",\n"
     << "  \"threads_requested\": 8,\n"
     << "  \"effective_threads\": " << effective_threads << ",\n"
     << "  \"ladders_ms\": " << ladders_ms << ",\n"
     << "  \"ladder_cache_hit_rate\": [" << ladders.cache_hit_rate[0] << ", "
     << ladders.cache_hit_rate[1] << "],\n"
     << "  \"serial\": {\n"
     << "    \"wall_ms\": " << serial_ms << ",\n"
     << "    \"missions_per_sec\": " << missions_per_sec(serial_ms) << "\n"
     << "  },\n"
     << "  \"fleet1\": {\n"
     << "    \"wall_ms\": " << fleet1_ms << ",\n"
     << "    \"missions_per_sec\": " << missions_per_sec(fleet1_ms) << "\n"
     << "  },\n"
     << "  \"fleet8\": {\n"
     << "    \"wall_ms\": " << fleet8_ms << ",\n"
     << "    \"missions_per_sec\": " << missions_per_sec(fleet8_ms) << "\n"
     << "  },\n"
     << "  \"speedup\": " << speedup << ",\n"
     << "  \"required_speedup\": " << required << ",\n"
     << "  \"soa_per_mission_ratio\": " << soa_ratio << ",\n"
     << "  \"depleted\": " << report8.depleted << ",\n"
     << "  \"fleet_availability\": " << report8.fleet_availability() << ",\n"
     << "  \"fleet_pareto\":\n";
  write_fleet_pareto_json(os, front, 2);
  os << ",\n  \"metrics\":\n";
  metrics.write_json(os, 2);
  os << ",\n"
     << "  \"speedup_ok\": " << util::json_bool(speedup_ok) << ",\n"
     << "  \"soa_no_regression\": " << util::json_bool(soa_no_regression)
     << ",\n"
     << "  \"thread_invariant\": " << util::json_bool(thread_invariant)
     << ",\n"
     << "  \"serial_fleet_agree\": " << util::json_bool(serial_fleet_agree)
     << ",\n"
     << "  \"ladder_cache_reused\": " << util::json_bool(ladder_cache_reused)
     << ",\n"
     << "  \"survival_monotone\": " << util::json_bool(survival_monotone)
     << ",\n"
     << "  \"availability_bounds_ok\": "
     << util::json_bool(availability_bounds_ok) << ",\n"
     << "  \"front_nonempty\": " << util::json_bool(front_nonempty) << ",\n"
     << "  \"metrics_match_stats\": " << util::json_bool(metrics_ok)
     << "\n}\n";
  os.close();

  const bool ok = speedup_ok && soa_no_regression && thread_invariant &&
                  serial_fleet_agree && ladder_cache_reused &&
                  survival_monotone && availability_bounds_ok &&
                  front_nonempty && metrics_ok;
  std::cout << "serial: " << serial_ms << " ms, fleet1: " << fleet1_ms
            << " ms, fleet8: " << fleet8_ms << " ms (" << effective_threads
            << " effective threads)\n"
            << "speedup: " << speedup << "x (required " << required
            << "), soa ratio " << soa_ratio << ", thread-invariant "
            << (thread_invariant ? "yes" : "NO") << ", depleted "
            << report8.depleted << "/" << report8.nodes << " -> " << out_path
            << "\n";
  return ok ? 0 : 1;
}
