// Exploration throughput benchmark: serial unmemoized explore_model vs the
// fast path (profile memoization + frequency replay + analytic prefilter +
// parallel profiling), on a MobileNet-class zoo model. Verifies on every run
// that the fast path produces identical per-layer Pareto fronts and an
// identical MCKP schedule, then emits BENCH_explore.json with wall-clock,
// candidates/sec, cache hit rate and the speedup — the perf-trajectory
// artifact for this pipeline.
//
//   $ ./build/bench_explore                # MBV2, 4 threads
//   $ ./build/bench_explore vww 8 out.json
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "graph/zoo.hpp"
#include "mckp/mckp.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "util/json_writer.hpp"

using namespace daedvfs;

namespace {

struct RunResult {
  double wall_ms = 0.0;
  dse::ExploreStats stats;
  std::vector<dse::LayerSolutionSet> sets;
};

RunResult run_explore(const graph::Model& model, const dse::DesignSpace& ds,
                      const dse::ExploreOptions& opts) {
  RunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  r.sets = dse::explore_model(model, ds, opts, &r.stats);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return r;
}

/// Candidate-identical fronts with value agreement to replay tolerance.
bool fronts_identical(const std::vector<dse::LayerSolutionSet>& a,
                      const std::vector<dse::LayerSolutionSet>& b,
                      double* max_rel_err) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].pareto.size() != b[i].pareto.size()) return false;
    for (std::size_t j = 0; j < a[i].pareto.size(); ++j) {
      const dse::LayerSolution& x = a[i].pareto[j];
      const dse::LayerSolution& y = b[i].pareto[j];
      if (x.granularity != y.granularity || !(x.hfo == y.hfo)) return false;
      *max_rel_err = std::max(
          {*max_rel_err, std::abs(x.t_us - y.t_us) / x.t_us,
           std::abs(x.energy_uj - y.energy_uj) / x.energy_uj});
      if (*max_rel_err > 1e-9) return false;
    }
  }
  return true;
}

/// MCKP over the fronts at a +30% QoS window above the fastest schedule,
/// sharing one DP workspace across the repeated solves.
std::vector<int> solve_schedule(const std::vector<dse::LayerSolutionSet>& sets,
                                mckp::DpWorkspace& ws) {
  mckp::Instance inst;
  double t_min = 0.0;
  for (const auto& set : sets) {
    std::vector<mckp::Item> cls;
    for (const auto& s : set.pareto) cls.push_back({s.t_us, s.energy_uj});
    t_min += set.pareto.front().t_us;  // ascending latency: front() is fastest
    inst.classes.push_back(std::move(cls));
  }
  inst.capacity = 1.3 * t_min;
  const mckp::Solution sol = mckp::solve_dp(inst, 20000, ws);
  return sol.feasible ? sol.chosen : std::vector<int>{};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "mbv2";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string out_path = argc > 3 ? argv[3] : "BENCH_explore.json";

  const graph::Model model = which == "vww"
                                 ? graph::zoo::make_vww()
                             : which == "pd"
                                 ? graph::zoo::make_person_detection()
                                 : graph::zoo::make_mbv2();
  const power::PowerModel pm;
  const dse::DesignSpace ds = dse::make_paper_design_space(pm);

  dse::ExploreOptions serial;
  serial.memoize = false;
  serial.prefilter = false;
  serial.freq_replay = false;
  serial.num_threads = 1;

  dse::ExploreOptions fast;
  fast.memoize = true;
  fast.prefilter = true;
  fast.freq_replay = true;
  fast.num_threads = threads;
  obs::MetricsRegistry metrics;
  obs::Sink sink;
  sink.metrics = &metrics;
  fast.sink = &sink;

  std::cout << "exploring " << model.name() << " (" << model.num_layers()
            << " layers), serial baseline...\n";
  const RunResult base = run_explore(model, ds, serial);
  std::cout << "fast path (" << threads << " threads)...\n";
  const RunResult opt = run_explore(model, ds, fast);

  double max_rel_err = 0.0;
  const bool fronts_ok = fronts_identical(base.sets, opt.sets, &max_rel_err);
  mckp::DpWorkspace ws;
  const std::vector<int> sched_base = solve_schedule(base.sets, ws);
  const std::vector<int> sched_fast = solve_schedule(opt.sets, ws);
  const bool sched_ok = !sched_base.empty() && sched_base == sched_fast;

  // The registry's explore.* counters must agree with the ExploreStats the
  // call returned — the observability layer may never tell a different
  // story than the first-class accounting (gate re-derived by
  // scripts/check_bench_gates.py).
  const auto counter_is = [&](const char* name, std::int64_t want) {
    return metrics.counter(name).value() == static_cast<std::uint64_t>(want);
  };
  const bool metrics_ok =
      counter_is("explore.total_candidates", opt.stats.total_candidates) &&
      counter_is("explore.pruned", opt.stats.pruned) &&
      counter_is("explore.profiled", opt.stats.profiled) &&
      counter_is("explore.cache_hits", opt.stats.cache_hits) &&
      counter_is("explore.replayed", opt.stats.replayed) &&
      // Fresh per-run cache: every surviving candidate probes it once and
      // misses; hits only happen when a cache is shared across calls.
      counter_is("profile_cache.misses",
                 opt.stats.total_candidates - opt.stats.pruned) &&
      counter_is("profile_cache.hits", 0);

  const double speedup = base.wall_ms > 0.0 ? base.wall_ms / opt.wall_ms : 0.0;
  const auto cands_per_sec = [](const RunResult& r) {
    return r.wall_ms > 0.0
               ? static_cast<double>(r.stats.total_candidates -
                                     r.stats.pruned) /
                     (r.wall_ms * 1e-3)
               : 0.0;
  };

  std::ofstream os(out_path);
  os.precision(6);
  os << "{\n"
     << "  \"model\": " << util::json_quoted(model.name()) << ",\n"
     << "  \"layers\": " << model.num_layers() << ",\n"
     << "  \"total_candidates\": " << base.stats.total_candidates << ",\n"
     << "  \"serial\": {\n"
     << "    \"wall_ms\": " << base.wall_ms << ",\n"
     << "    \"profiled\": " << base.stats.profiled << ",\n"
     << "    \"candidates_per_sec\": " << cands_per_sec(base) << "\n"
     << "  },\n"
     << "  \"fast\": {\n"
     << "    \"threads\": " << threads << ",\n"
     << "    \"wall_ms\": " << opt.wall_ms << ",\n"
     << "    \"profiled\": " << opt.stats.profiled << ",\n"
     << "    \"replayed\": " << opt.stats.replayed << ",\n"
     << "    \"cache_hits\": " << opt.stats.cache_hits << ",\n"
     << "    \"cache_hit_rate\": " << opt.stats.hit_rate() << ",\n"
     << "    \"pruned\": " << opt.stats.pruned << ",\n"
     << "    \"candidates_per_sec\": " << cands_per_sec(opt) << "\n"
     << "  },\n"
     << "  \"speedup\": " << speedup << ",\n"
     << "  \"max_front_rel_err\": " << max_rel_err << ",\n"
     << "  \"metrics\":\n";
  metrics.write_json(os, 2);
  os << ",\n"
     << "  \"pareto_fronts_identical\": " << util::json_bool(fronts_ok)
     << ",\n"
     << "  \"mckp_schedules_identical\": " << util::json_bool(sched_ok)
     << ",\n"
     << "  \"metrics_match_stats\": " << util::json_bool(metrics_ok)
     << "\n}\n";
  os.close();

  std::cout << "serial: " << base.wall_ms << " ms (" << base.stats.profiled
            << " sims)\n"
            << "fast:   " << opt.wall_ms << " ms (" << opt.stats.profiled
            << " sims, " << opt.stats.replayed << " replayed, "
            << opt.stats.cache_hits << " memo hits, " << opt.stats.pruned
            << " pruned)\n"
            << "speedup: " << speedup << "x, fronts "
            << (fronts_ok ? "identical" : "MISMATCH") << ", schedules "
            << (sched_ok ? "identical" : "MISMATCH") << " -> " << out_path
            << "\n";
  return fronts_ok && sched_ok ? 0 : 1;
}
